"""Eager type checking on Q operators (the phantom-typing stand-in)."""

import pytest

from repro import QTypeError, cond, max_q, min_q, nil, to_q, tup
from repro.ftypes import (
    BoolT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TupleT,
)


class TestComparisons:
    def test_eq_produces_bool(self):
        q = to_q(1) == to_q(2)
        assert q.ty == BoolT

    def test_eq_coerces_python_literal(self):
        q = to_q("a") == "b"
        assert q.ty == BoolT

    def test_eq_type_mismatch(self):
        with pytest.raises(QTypeError):
            to_q(1) == to_q("a")

    def test_eq_on_flat_tuple(self):
        q = to_q((1, "a")) == to_q((2, "b"))
        assert q.ty == BoolT

    def test_eq_on_list_rejected(self):
        with pytest.raises(QTypeError):
            to_q([1]) == to_q([2])

    def test_ordering_on_atoms(self):
        assert (to_q(1) < 2).ty == BoolT
        assert (to_q("a") >= "b").ty == BoolT

    def test_ordering_lexicographic_on_tuples(self):
        assert (to_q((1, "a")) < to_q((1, "b"))).ty == BoolT


class TestArithmetic:
    def test_add_int(self):
        assert (to_q(1) + 2).ty == IntT

    def test_radd(self):
        assert (2 + to_q(1)).ty == IntT

    def test_add_on_strings_concatenates(self):
        assert (to_q("a") + "b").ty == StringT

    def test_add_requires_numeric_or_string(self):
        with pytest.raises(QTypeError):
            to_q(True) + True

    def test_no_implicit_coercion(self):
        with pytest.raises(QTypeError):
            to_q(1) + to_q(1.5)

    def test_truediv_rejected_on_int(self):
        with pytest.raises(QTypeError):
            to_q(4) / 2

    def test_truediv_on_double(self):
        assert (to_q(4.0) / 2.0).ty == DoubleT

    def test_floordiv_only_int(self):
        assert (to_q(4) // 2).ty == IntT
        with pytest.raises(QTypeError):
            to_q(4.0) // 2.0

    def test_mod_only_int(self):
        assert (to_q(4) % 2).ty == IntT
        with pytest.raises(QTypeError):
            to_q(4.0) % 2.0

    def test_neg_abs(self):
        assert (-to_q(4)).ty == IntT
        assert abs(to_q(-4.0)).ty == DoubleT
        with pytest.raises(QTypeError):
            -to_q("a")

    def test_to_double(self):
        assert to_q(4).to_double().ty == DoubleT
        assert to_q(4.0).to_double().ty == DoubleT
        with pytest.raises(QTypeError):
            to_q("a").to_double()


class TestBoolean:
    def test_connectives(self):
        q = (to_q(True) & False) | ~to_q(False)
        assert q.ty == BoolT

    def test_and_requires_bool(self):
        with pytest.raises(QTypeError):
            to_q(1) & to_q(2)

    def test_invert_requires_bool(self):
        with pytest.raises(QTypeError):
            ~to_q(1)

    def test_python_bool_context_rejected(self):
        with pytest.raises(QTypeError):
            bool(to_q(True))
        with pytest.raises(QTypeError):
            if to_q(1) == 1:  # noqa: B015 - the point of the test
                pass


class TestStructure:
    def test_tuple_projection(self):
        q = to_q((1, "a"))
        assert q[0].ty == IntT
        assert q[1].ty == StringT
        assert q[-1].ty == StringT

    def test_projection_out_of_range(self):
        with pytest.raises(QTypeError):
            to_q((1, 2))[5]

    def test_projection_needs_int(self):
        with pytest.raises(QTypeError):
            to_q((1, 2))["x"]

    def test_tuple_unpacking(self):
        a, b = to_q((1, "a"))
        assert a.ty == IntT
        assert b.ty == StringT

    def test_unpack_non_tuple_rejected(self):
        with pytest.raises(QTypeError):
            a, b = to_q(1)

    def test_list_indexing_dispatch(self):
        q = to_q([1, 2, 3])
        assert q[to_q(0)].ty == IntT
        assert q[1].ty == IntT  # plain int becomes a query index

    def test_index_on_atom_rejected(self):
        with pytest.raises(QTypeError):
            to_q(1)[0]


class TestConversions:
    def test_to_q_idempotent_on_q(self):
        q = to_q(5)
        assert to_q(q) is q

    def test_to_q_hint_mismatch(self):
        with pytest.raises(QTypeError):
            to_q(to_q(5), hint=StringT)

    def test_nil(self):
        assert nil(IntT).ty == ListT(IntT)

    def test_tup(self):
        q = tup(1, "a", True)
        assert q.ty == TupleT((IntT, StringT, BoolT))

    def test_tup_singleton(self):
        assert tup(1).ty == IntT

    def test_int_literal_at_double(self):
        assert to_q(3, hint=DoubleT).ty == DoubleT


class TestCondMinMax:
    def test_cond_types(self):
        assert cond(to_q(True), 1, 2).ty == IntT

    def test_cond_branch_mismatch(self):
        with pytest.raises(QTypeError):
            cond(to_q(True), 1, "a")

    def test_cond_condition_must_be_bool(self):
        with pytest.raises(QTypeError):
            cond(to_q(1), 1, 2)

    def test_min_max(self):
        assert min_q(1, 2).ty == IntT
        assert max_q("a", "b").ty == StringT
        with pytest.raises(QTypeError):
            min_q(to_q([1]), to_q([2]))

    def test_repr_mentions_type(self):
        assert "[Int]" in repr(to_q([1, 2]))
