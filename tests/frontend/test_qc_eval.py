"""Semantics of qc-quoted comprehensions (via the reference interpreter)."""

import pytest

from repro import ComprehensionSyntaxError, QTypeError, qc, qe, table, to_q
from repro.runtime import Catalog
from repro.semantics import Interpreter


@pytest.fixture()
def it():
    return Interpreter(Catalog())


def ev(it, q):
    return it.run(q.exp)


NUMS = to_q([3, 1, 4, 1, 5])


class TestBasics:
    def test_identity(self, it):
        assert ev(it, qc("[x | x <- xs]", xs=NUMS)) == [3, 1, 4, 1, 5]

    def test_map_expression(self, it):
        assert ev(it, qc("[x * 2 | x <- xs]", xs=[1, 2])) == [2, 4]

    def test_guard(self, it):
        assert ev(it, qc("[x | x <- xs, x > 2]", xs=NUMS)) == [3, 4, 5]

    def test_two_generators_order(self, it):
        q = qc("[(x, y) | x <- a, y <- b]", a=[1, 2], b=["u", "v"])
        assert ev(it, q) == [(1, "u"), (1, "v"), (2, "u"), (2, "v")]

    def test_dependent_generator(self, it):
        q = qc("[y | xs <- xss, y <- xs]", xss=[[1, 2], [], [3]])
        assert ev(it, q) == [1, 2, 3]

    def test_tuple_pattern(self, it):
        q = qc("[a + b | (a, b) <- ps]", ps=[(1, 10), (2, 20)])
        assert ev(it, q) == [11, 22]

    def test_wildcard_pattern(self, it):
        q = qc("[b | (_, b) <- ps]", ps=[(1, "x"), (2, "y")])
        assert ev(it, q) == ["x", "y"]

    def test_let(self, it):
        q = qc("[y | x <- xs, let y = x * x, y > 4]", xs=[1, 2, 3])
        assert ev(it, q) == [9]

    def test_guard_before_generator(self, it):
        assert ev(it, qc("[x | flag, x <- xs]", flag=True, xs=[1])) == [1]
        assert ev(it, qc("[x | flag, x <- xs]", flag=False, xs=[1])) == []

    def test_no_generator(self, it):
        assert ev(it, qc("[1 | b]", b=True)) == [1]
        assert ev(it, qc("[1 | b]", b=False)) == []


class TestExtensions:
    def test_group_by_rebinds_to_lists(self, it):
        q = qc("[(the(k), sum(v)) | (k, v) <- ps, then group by k]",
               ps=[("a", 1), ("b", 2), ("a", 3)])
        assert ev(it, q) == [("a", 4), ("b", 2)]

    def test_group_by_preserves_inner_order(self, it):
        q = qc("[v | (k, v) <- ps, then group by k]",
               ps=[("b", 1), ("a", 2), ("b", 3)])
        assert ev(it, q) == [[2], [1, 3]]

    def test_order_by(self, it):
        assert ev(it, qc("[x | x <- xs, order by x]", xs=NUMS)) == [1, 1, 3, 4, 5]

    def test_order_by_desc(self, it):
        assert ev(it, qc("[x | x <- xs, order by x desc]",
                         xs=NUMS)) == [5, 4, 3, 1, 1]

    def test_then_sortwith_by(self, it):
        q = qc("[x | x <- xs, then sortWith by x % 3]", xs=[3, 1, 4, 5])
        assert ev(it, q) == [3, 1, 4, 5].__class__(sorted([3, 1, 4, 5],
                                                          key=lambda v: v % 3))

    def test_guard_after_group(self, it):
        q = qc("[the(k) | (k, v) <- ps, then group by k, length(v) > 1]",
               ps=[("a", 1), ("b", 2), ("a", 3)])
        assert ev(it, q) == ["a"]


class TestExpressions:
    def test_if_then_else(self, it):
        q = qc("[if x > 2 then 'big' else 'small' | x <- xs]", xs=[1, 5])
        assert ev(it, q) == ["small", "big"]

    def test_builtin_calls(self, it):
        q = qe("sum([x | x <- xs, x > 1])", xs=[1, 2, 3])
        assert ev(it, q) == 5

    def test_haskell_aliases(self, it):
        q = qe("concatMap(\\x -> [x, x], xs)", xs=[1, 2])
        assert ev(it, q) == [1, 1, 2, 2]

    def test_user_function_inlined(self, it):
        def double(x):
            return x * 2
        assert ev(it, qc("[double(x) | x <- xs]", xs=[1, 2],
                         double=double)) == [2, 4]

    def test_nested_comprehension(self, it):
        q = qc("[[y | y <- xs, y < x] | x <- xs]", xs=[1, 2, 3])
        assert ev(it, q) == [[], [1], [1, 2]]

    def test_cons_and_append(self, it):
        assert ev(it, qe("0 : xs ++ [9]", xs=[1, 2])) == [0, 1, 2, 9]

    def test_projection_syntax(self, it):
        assert ev(it, qe("p.1", p=(1, "x"))) == "x"
        assert ev(it, qe("fst(p)", p=(1, "x"))) == 1

    def test_arithmetic(self, it):
        assert ev(it, qe("(7 // 2) % 3 - 1")) == -1
        assert ev(it, qe("1.0 / 4.0")) == 0.25

    def test_string_equality_operators(self, it):
        assert ev(it, qe("'a' /= 'b'")) is True


class TestErrors:
    def test_unbound_name(self):
        with pytest.raises(ComprehensionSyntaxError):
            qc("[x | x <- nope]")

    def test_empty_list_literal_needs_type(self):
        with pytest.raises(ComprehensionSyntaxError):
            qc("[[] | x <- xs]", xs=[1])

    def test_non_list_generator(self):
        with pytest.raises(QTypeError):
            qc("[x | x <- n]", n=5)

    def test_unknown_function(self):
        with pytest.raises(ComprehensionSyntaxError):
            qc("[frobnicate(x) | x <- xs]", xs=[1])

    def test_not_callable(self):
        with pytest.raises(ComprehensionSyntaxError):
            qc("[f(x) | x <- xs]", xs=[1], f=3)


class TestGuardScheduling:
    """Guard pushdown must not change semantics."""

    def test_multi_generator_guard_order(self, it):
        q = qc("[(x, y) | x <- a, y <- b, y == 2 and x == 1]",
               a=[1, 2], b=[1, 2])
        assert ev(it, q) == [(1, 2)]

    def test_guard_split_conjuncts(self, it):
        q = qc("[(x, y) | x <- a, y <- b, x > 1 and y > 10 and x + y > 23]",
               a=[1, 2, 3], b=[10, 20, 30])
        assert ev(it, q) == [(2, 30), (3, 30)]

    def test_guard_depends_on_later_generator_stays(self, it):
        # x-only guard written after the y generator: still correct
        q = qc("[(x, y) | x <- a, y <- b, x == 2]", a=[1, 2], b=[5, 6])
        assert ev(it, q) == [(2, 5), (2, 6)]

    def test_table_source_with_correlated_guard(self, it):
        it.catalog.create_table("t", [("k", int), ("v", str)],
                                [(1, "a"), (2, "b"), (1, "c")])
        t = table("t", {"k": int, "v": str})
        q = qc("[v | x <- xs, (k, v) <- t, k == x]", xs=[1], t=t)
        assert ev(it, q) == ["a", "c"]
