"""Lexer and parser unit tests for the qc quasi-quoter surface syntax."""

import pytest

from repro.errors import ComprehensionSyntaxError
from repro.frontend.comprehensions import parser as P
from repro.frontend.comprehensions.lexer import tokenize


class TestLexer:
    def test_basic_tokens(self):
        kinds = [(t.kind, t.text) for t in tokenize("x <- xs, x == 1")]
        assert kinds == [
            ("name", "x"), ("op", "<-"), ("name", "xs"), ("op", ","),
            ("name", "x"), ("op", "=="), ("int", "1"), ("eof", ""),
        ]

    def test_keywords(self):
        toks = tokenize("then group by order let")
        assert all(t.kind == "kw" for t in toks[:-1])

    def test_strings_with_escapes(self):
        toks = tokenize(r'"a\"b" ' + r"'c\nd'")
        assert toks[0].text == 'a"b'
        assert toks[1].text == "c\nd"

    def test_floats(self):
        toks = tokenize("1.5 2e3 7")
        assert [t.kind for t in toks[:-1]] == ["float", "float", "int"]

    def test_primes_in_names(self):
        assert tokenize("feat'")[0].text == "feat'"

    def test_comments_skipped(self):
        toks = tokenize("x -- a comment\n y")
        assert [t.text for t in toks[:-1]] == ["x", "y"]

    def test_unknown_character(self):
        with pytest.raises(ComprehensionSyntaxError):
            tokenize("x ? y")


class TestParserQualifiers:
    def parse(self, src):
        return P.parse_comprehension(src)

    def test_generator_with_tuple_pattern(self):
        comp = self.parse("[x | (x, _) <- xs]")
        (gen,) = comp.quals
        assert isinstance(gen, P.PGen)
        assert isinstance(gen.pat, P.PTuplePat)
        assert isinstance(gen.pat.parts[1], P.PWildPat)

    def test_guard(self):
        comp = self.parse("[x | x <- xs, x > 1]")
        assert isinstance(comp.quals[1], P.PGuard)

    def test_let(self):
        comp = self.parse("[y | x <- xs, let y = x + 1]")
        let = comp.quals[1]
        assert isinstance(let, P.PLet)
        assert let.name == "y"

    def test_then_group_by(self):
        comp = self.parse("[the(x) | x <- xs, then group by x]")
        assert isinstance(comp.quals[1], P.PGroup)

    def test_group_by_using_clause(self):
        comp = self.parse("[the(x) | x <- xs, then group by x using groupWith]")
        assert isinstance(comp.quals[1], P.PGroup)

    def test_then_sortwith_by(self):
        comp = self.parse("[x | x <- xs, then sortWith by x]")
        sort = comp.quals[1]
        assert isinstance(sort, P.PSort)
        assert not sort.descending

    def test_order_by_desc(self):
        comp = self.parse("[x | x <- xs, order by x desc]")
        assert comp.quals[1].descending

    def test_nested_pattern(self):
        comp = self.parse("[a | ((a, b), c) <- xs]")
        pat = comp.quals[0].pat
        assert isinstance(pat.parts[0], P.PTuplePat)


class TestParserExpressions:
    def expr(self, src):
        return P.parse_expression(src)

    def test_precedence_arith_over_cmp(self):
        e = self.expr("a + b * c == d")
        assert isinstance(e, P.PBin) and e.op == "eq"
        assert isinstance(e.lhs, P.PBin) and e.lhs.op == "add"
        assert e.lhs.rhs.op == "mul"

    def test_and_or_precedence(self):
        e = self.expr("a or b and c")
        assert e.op == "or"
        assert e.rhs.op == "and"

    def test_haskell_style_operators(self):
        assert self.expr("a /= b").op == "ne"
        assert self.expr("a && b").op == "and"
        assert self.expr("a || b").op == "or"

    def test_append_right_assoc(self):
        e = self.expr("a ++ b ++ c")
        assert e.op == "append"
        assert e.rhs.op == "append"

    def test_cons(self):
        e = self.expr("x : xs")
        assert e.op == "cons"

    def test_call_and_projection(self):
        e = self.expr("f(x).0")
        assert isinstance(e, P.PProj) and e.field == 0
        assert isinstance(e.operand, P.PCall)

    def test_field_projection(self):
        e = self.expr("row.name")
        assert isinstance(e, P.PProj) and e.field == "name"

    def test_if_then_else(self):
        e = self.expr("if x then 1 else 2")
        assert isinstance(e, P.PIf)

    def test_lambda(self):
        e = self.expr("\\(a, b) -> a + b")
        assert isinstance(e, P.PLam)

    def test_tuple_and_list_literals(self):
        assert isinstance(self.expr("(1, 2, 3)"), P.PTuple)
        assert isinstance(self.expr("[1, 2]"), P.PList)
        assert self.expr("[]") == P.PList(())

    def test_nested_comprehension(self):
        e = self.expr("[x | x <- xs]")
        assert isinstance(e, P.PComp)

    def test_unary_minus(self):
        e = self.expr("-x + 1")
        assert e.op == "add"
        assert isinstance(e.lhs, P.PUn)

    def test_bool_literals(self):
        assert self.expr("True") == P.PLit(True)
        assert self.expr("False") == P.PLit(False)


class TestParserErrors:
    @pytest.mark.parametrize("bad", [
        "[x | ]",
        "[x |",
        "[x | x <- ]",
        "[x | x <- xs",
        "x +",
        "[x | then frobnicate by x]",
        "f(a,,b)",
    ])
    def test_rejects(self, bad):
        with pytest.raises(ComprehensionSyntaxError):
            if bad.startswith("["):
                P.parse_comprehension(bad)
            else:
                P.parse_expression(bad)
