"""String and date/time operations through all backends."""

import datetime

import pytest

from repro import QTypeError, ffilter, fmap, to_q
from repro.ftypes import BoolT, IntT, StringT
from repro.runtime import Catalog

from ..conftest import run_all_ways


@pytest.fixture(scope="module")
def catalog():
    return Catalog()


NAMES = to_q(["Ada", "grace", "Alan"])
DATES = to_q([datetime.date(2009, 6, 29), datetime.date(2010, 12, 5)])
TIMES = to_q([datetime.time(9, 30, 15), datetime.time(23, 5, 0)])


class TestTyping:
    def test_string_ops_types(self):
        s = to_q("x")
        assert s.upper().ty == StringT
        assert s.lower().ty == StringT
        assert s.strlen().ty == IntT
        assert s.like("%x%").ty == BoolT
        assert (s + "y").ty == StringT
        assert ("y" + s).ty == StringT

    def test_string_ops_reject_non_strings(self):
        with pytest.raises(QTypeError):
            to_q(1).upper()
        with pytest.raises(QTypeError):
            to_q(1).like("%")

    def test_date_parts_types(self):
        d = to_q(datetime.date(2009, 6, 29))
        assert d.year().ty == IntT
        assert d.month().ty == IntT
        assert d.day().ty == IntT

    def test_time_parts_types(self):
        t = to_q(datetime.time(12, 30))
        assert t.hour().ty == IntT
        assert t.minute().ty == IntT
        assert t.second().ty == IntT

    def test_parts_reject_wrong_type(self):
        with pytest.raises(QTypeError):
            to_q("x").year()
        with pytest.raises(QTypeError):
            to_q(datetime.date(2020, 1, 1)).hour()


class TestSemantics:
    def test_case_mapping(self, catalog):
        assert run_all_ways(fmap(lambda s: s.upper(), NAMES), catalog) == [
            "ADA", "GRACE", "ALAN"]
        assert run_all_ways(fmap(lambda s: s.lower(), NAMES), catalog) == [
            "ada", "grace", "alan"]

    def test_strlen(self, catalog):
        assert run_all_ways(fmap(lambda s: s.strlen(), NAMES),
                            catalog) == [3, 5, 4]

    def test_concatenation(self, catalog):
        q = fmap(lambda s: s + "!", NAMES)
        assert run_all_ways(q, catalog) == ["Ada!", "grace!", "Alan!"]

    def test_like_patterns(self, catalog):
        assert run_all_ways(
            ffilter(lambda s: s.like("A%"), NAMES), catalog) == [
            "Ada", "Alan"]
        assert run_all_ways(
            ffilter(lambda s: s.like("_race"), NAMES), catalog) == ["grace"]
        assert run_all_ways(
            ffilter(lambda s: s.like("%a%"), NAMES), catalog) == [
            "Ada", "grace", "Alan"]

    def test_like_is_case_sensitive(self, catalog):
        # (SQLite's native LIKE is not; the FERRY_LIKE UDF must be)
        assert run_all_ways(
            ffilter(lambda s: s.like("g%"), NAMES), catalog) == ["grace"]
        assert run_all_ways(
            ffilter(lambda s: s.like("G%"), NAMES), catalog) == []

    def test_like_escapes_regex_chars(self, catalog):
        weird = to_q(["a.b", "axb"])
        assert run_all_ways(
            ffilter(lambda s: s.like("a.b"), weird), catalog) == ["a.b"]

    def test_date_parts(self, catalog):
        q = fmap(lambda d: d.year() * 10000 + d.month() * 100 + d.day(),
                 DATES)
        assert run_all_ways(q, catalog) == [20090629, 20101205]

    def test_time_parts(self, catalog):
        q = fmap(lambda t: t.hour() * 3600 + t.minute() * 60 + t.second(),
                 TIMES)
        assert run_all_ways(q, catalog) == [9 * 3600 + 30 * 60 + 15,
                                            23 * 3600 + 5 * 60]

    def test_filter_by_year(self, catalog):
        q = ffilter(lambda d: d.year() == 2009, DATES)
        assert run_all_ways(q, catalog) == [datetime.date(2009, 6, 29)]

    def test_group_by_computed_string(self, catalog):
        from repro import group_with
        q = group_with(lambda s: s.upper().like("A%"), NAMES)
        run_all_ways(q, catalog)


class TestQuoterMethodSyntax:
    """String/date methods are reachable inside both quasi-quoters."""

    def test_qc_method_calls(self, catalog):
        from repro import qc
        q = qc("[n.upper() | n <- names, n.like('A%')]", names=NAMES)
        assert run_all_ways(q, catalog) == ["ADA", "ALAN"]

    def test_pyq_method_calls(self, catalog):
        from repro import pyq
        q = pyq("[n.lower() for n in names if n.strlen() == 3]",
                names=NAMES)
        assert run_all_ways(q, catalog) == ["ada"]

    def test_qc_date_parts(self, catalog):
        from repro import qc
        q = qc("[d.year() | d <- dates, d.month() == 6]", dates=DATES)
        assert run_all_ways(q, catalog) == [2009]
