"""Sum types (Maybe / Either): the paper's Section 5 extension.

Encoded as tag + padded payload; observers agree with Data.Maybe /
Data.Either semantics and run on every backend.
"""

import pytest

from repro import (
    Connection,
    QTypeError,
    cat_maybes,
    cond,
    either_q,
    find_q,
    fmap,
    from_maybe,
    from_python_maybe,
    is_just,
    is_left,
    is_nothing,
    is_right,
    just,
    left,
    lefts,
    lookup_q,
    map_maybe,
    maybe_q,
    maybe_type,
    nil,
    nothing,
    partition_eithers,
    right,
    rights,
    to_python_maybe,
    to_q,
)
from repro.ftypes import BoolT, IntT, StringT, TupleT

from ..conftest import run_all_ways


@pytest.fixture(scope="module")
def catalog():
    from repro.runtime import Catalog
    return Catalog()


XS = to_q([1, 2, 3, 4])


class TestMaybeTyping:
    def test_encoded_type(self):
        assert just(5).ty == TupleT((BoolT, IntT))
        assert nothing(IntT).ty == TupleT((BoolT, IntT))
        assert maybe_type(StringT) == TupleT((BoolT, StringT))

    def test_nothing_pads_nested_payloads(self):
        m = nothing(TupleT((IntT, StringT)))
        assert m.ty == TupleT((BoolT, TupleT((IntT, StringT))))

    def test_observer_rejects_non_maybe(self):
        with pytest.raises(QTypeError):
            is_just(to_q(5))
        with pytest.raises(QTypeError):
            from_maybe(0, to_q((1, 2)))


class TestMaybeSemantics:
    def test_is_just_nothing(self, catalog):
        assert run_all_ways(is_just(just(5)), catalog) is True
        assert run_all_ways(is_nothing(nothing(IntT)), catalog) is True

    def test_from_maybe(self, catalog):
        assert run_all_ways(from_maybe(0, just(5)), catalog) == 5
        assert run_all_ways(from_maybe(0, nothing(IntT)), catalog) == 0

    def test_maybe_case_analysis(self, catalog):
        assert run_all_ways(
            maybe_q(-1, lambda x: x * 10, just(5)), catalog) == 50
        assert run_all_ways(
            maybe_q(-1, lambda x: x * 10, nothing(IntT)), catalog) == -1

    def test_cat_maybes_keeps_order(self, catalog):
        ms = fmap(lambda x: cond(x % 2 == 0, just(x), nothing(IntT)), XS)
        assert run_all_ways(cat_maybes(ms), catalog) == [2, 4]

    def test_map_maybe(self, catalog):
        q = map_maybe(
            lambda x: cond(x > 2, just(x * 100), nothing(IntT)), XS)
        assert run_all_ways(q, catalog) == [300, 400]

    def test_find_hit_and_miss(self, catalog):
        assert run_all_ways(find_q(lambda x: x > 2, XS), catalog) == (True, 3)
        assert run_all_ways(find_q(lambda x: x > 9, XS), catalog) == (False, 0)

    def test_find_on_empty(self, catalog):
        assert run_all_ways(
            find_q(lambda x: x > 0, nil(IntT)), catalog) == (False, 0)

    def test_lookup(self, catalog):
        pairs = to_q([("a", 1), ("b", 2), ("a", 3)])
        assert run_all_ways(lookup_q("a", pairs), catalog) == (True, 1)
        assert run_all_ways(lookup_q("z", pairs), catalog) == (False, 0)

    def test_lifted_maybe_inside_map(self, catalog):
        q = fmap(lambda x: from_maybe(-1, find_q(lambda y: y > x, XS)), XS)
        assert run_all_ways(q, catalog) == [2, 3, 4, -1]


class TestPythonBridge:
    def test_from_python_maybe(self):
        db = Connection()
        assert db.run(from_python_maybe(7, IntT)) == (True, 7)
        assert db.run(from_python_maybe(None, IntT)) == (False, 0)

    def test_to_python_maybe(self):
        assert to_python_maybe((True, 7)) == 7
        assert to_python_maybe((False, 0)) is None


class TestEither:
    def test_encoded_type(self):
        assert left(1, StringT).ty == TupleT((BoolT, IntT, StringT))
        assert right("x", IntT).ty == TupleT((BoolT, IntT, StringT))

    def test_tags(self, catalog):
        assert run_all_ways(is_left(left(1, StringT)), catalog) is True
        assert run_all_ways(is_right(right("x", IntT)), catalog) is True

    def test_case_analysis(self, catalog):
        e = left(5, StringT)
        q = either_q(lambda a: a * 2, lambda s: to_q(0), e)
        assert run_all_ways(q, catalog) == 10

    def test_lefts_rights_partition(self, catalog):
        es = fmap(lambda x: cond(x % 2 == 0,
                                 left(x, StringT),
                                 right("odd", IntT)), XS)
        assert run_all_ways(lefts(es), catalog) == [2, 4]
        assert run_all_ways(rights(es), catalog) == ["odd", "odd"]
        assert run_all_ways(partition_eithers(es), catalog) == (
            [2, 4], ["odd", "odd"])

    def test_observer_rejects_non_either(self):
        with pytest.raises(QTypeError):
            is_left(just(1))
