"""Tables (the TA constraint, alphabetical ordering) and record support."""

import dataclasses

import pytest

from repro import Connection, QTypeError, queryable, rows_as, table, table_for, to_q
from repro.ftypes import IntT, ListT, StringT, TupleT
from repro.frontend.tables import normalize_schema, row_type
from repro.runtime import Catalog


class TestTableCombinator:
    def test_columns_ordered_alphabetically(self):
        q = table("t", [("zeta", int), ("alpha", str)])
        # (alpha, zeta) regardless of declaration order
        assert q.ty == ListT(TupleT((StringT, IntT)))

    def test_single_column_is_atom(self):
        q = table("t", {"n": int})
        assert q.ty == ListT(IntT)

    def test_ta_constraint_rejects_non_atoms(self):
        with pytest.raises(QTypeError):
            table("t", {"xs": list})

    def test_duplicate_column_rejected(self):
        with pytest.raises(QTypeError):
            normalize_schema([("a", int), ("a", str)])

    def test_empty_schema_rejected(self):
        with pytest.raises(QTypeError):
            table("t", [])

    def test_no_io_at_construction(self):
        # referencing a non-existent table is fine until run time
        q = table("does_not_exist", {"n": int})
        assert q.ty == ListT(IntT)

    def test_row_type(self):
        cols = normalize_schema([("b", int), ("a", str)])
        assert row_type(cols) == TupleT((StringT, IntT))


@queryable
@dataclasses.dataclass
class Facility:
    fac: str
    cat: str


class TestRecords:
    def test_embedding(self):
        q = to_q(Facility(fac="DSH", cat="LIB"))
        # alphabetical field order: (cat, fac)
        assert q.ty == TupleT((StringT, StringT))

    def test_field_access_by_name(self):
        q = to_q(Facility(fac="DSH", cat="LIB"))
        assert q.cat.ty == StringT
        assert q.fac.ty == StringT

    def test_unknown_field(self):
        q = to_q(Facility(fac="DSH", cat="LIB"))
        with pytest.raises(AttributeError):
            q.nonexistent

    def test_table_for(self):
        q = table_for(Facility)
        assert q.ty == ListT(TupleT((StringT, StringT)))

    def test_field_access_through_map(self):
        q = table_for(Facility).map(lambda f: f.fac)
        assert q.ty == ListT(StringT)

    def test_rows_as(self):
        rows = [("LIB", "DSH"), ("QLA", "SQL")]
        records = rows_as(Facility, rows)
        assert records == [Facility(fac="DSH", cat="LIB"),
                           Facility(fac="SQL", cat="QLA")]

    def test_end_to_end(self):
        db = Connection()
        db.create_table_from_records(Facility, [
            Facility("LINQ", "LIN"), Facility("DSH", "LIB")])
        q = table_for(Facility).filter(lambda f: f.cat == "LIB").map(
            lambda f: f.fac)
        assert db.run(q) == ["DSH"]

    def test_non_dataclass_rejected(self):
        with pytest.raises(QTypeError):
            @queryable
            class NotADataclass:
                pass

    def test_non_atom_field_rejected(self):
        @queryable
        @dataclasses.dataclass
        class Bad:
            a: int
            b: list
        with pytest.raises(QTypeError):
            table_for(Bad)


class TestCatalogIntegration:
    def test_connection_table_matches_catalog(self):
        db = Connection()
        db.create_table("t", [("b", int), ("a", str)], [(1, "x")])
        q = db.table("t")
        assert q.ty == ListT(TupleT((StringT, IntT)))
        assert db.run(q) == [("x", 1)]

    def test_rows_canonical_order(self):
        cat = Catalog()
        cat.create_table("t", [("n", int)], [(3,), (1,), (2,)])
        assert cat.rows("t") == [(1,), (2,), (3,)]
