"""Unit tests for the Ferry type system."""

import datetime

import pytest

from repro.ftypes import (
    BoolT,
    DateT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TimeT,
    TupleT,
    atom_type_for,
    atom_width,
    count_list_constructors,
    is_atom,
    is_flat,
    is_numeric,
    is_orderable,
    list_depth,
    python_class_for,
    tuple_t,
)


class TestConstruction:
    def test_atoms_are_singletons(self):
        assert BoolT is not IntT
        assert BoolT == BoolT

    def test_tuple_requires_two_components(self):
        with pytest.raises(ValueError):
            TupleT((IntT,))

    def test_tuple_t_collapses_singleton(self):
        # "a singleton tuple (v) and value v are treated alike"
        assert tuple_t(IntT) == IntT
        assert tuple_t(IntT, BoolT) == TupleT((IntT, BoolT))

    def test_nested_types_are_values(self):
        t1 = ListT(TupleT((IntT, ListT(StringT))))
        t2 = ListT(TupleT((IntT, ListT(StringT))))
        assert t1 == t2
        assert hash(t1) == hash(t2)


class TestShow:
    def test_atom_show(self):
        assert IntT.show() == "Int"
        assert DoubleT.show() == "Double"

    def test_list_show(self):
        assert ListT(IntT).show() == "[Int]"

    def test_tuple_show(self):
        assert TupleT((IntT, StringT)).show() == "(Int, String)"

    def test_nested_show(self):
        ty = ListT(TupleT((StringT, ListT(StringT))))
        assert ty.show() == "[(String, [String])]"


class TestPredicates:
    def test_is_atom(self):
        assert is_atom(IntT)
        assert not is_atom(ListT(IntT))
        assert not is_atom(TupleT((IntT, IntT)))

    def test_is_flat_accepts_nested_tuples_of_atoms(self):
        assert is_flat(TupleT((IntT, TupleT((BoolT, StringT)))))

    def test_is_flat_rejects_lists(self):
        assert not is_flat(ListT(IntT))
        assert not is_flat(TupleT((IntT, ListT(IntT))))

    def test_is_orderable(self):
        assert is_orderable(IntT)
        assert is_orderable(DateT)
        assert is_orderable(TupleT((IntT, StringT)))
        assert not is_orderable(ListT(IntT))

    def test_is_numeric(self):
        assert is_numeric(IntT)
        assert is_numeric(DoubleT)
        assert not is_numeric(BoolT)
        assert not is_numeric(StringT)


class TestMeasures:
    def test_list_depth(self):
        assert list_depth(IntT) == 0
        assert list_depth(ListT(ListT(IntT))) == 2

    def test_count_list_constructors_spine(self):
        assert count_list_constructors(ListT(ListT(IntT))) == 2

    def test_count_list_constructors_in_tuples(self):
        # the paper's running example type: [(String, [String])] -> 2
        ty = ListT(TupleT((StringT, ListT(StringT))))
        assert count_list_constructors(ty) == 2

    def test_count_list_constructors_tuple_of_lists(self):
        ty = TupleT((ListT(IntT), ListT(IntT)))
        assert count_list_constructors(ty) == 2

    def test_atom_width(self):
        assert atom_width(IntT) == 1
        assert atom_width(TupleT((IntT, TupleT((IntT, IntT))))) == 3
        # a nested list occupies a single surrogate column
        assert atom_width(TupleT((IntT, ListT(IntT)))) == 2


class TestPythonMapping:
    @pytest.mark.parametrize("py, ferry", [
        (bool, BoolT), (int, IntT), (float, DoubleT), (str, StringT),
        (datetime.date, DateT), (datetime.time, TimeT),
    ])
    def test_atom_type_for(self, py, ferry):
        assert atom_type_for(py) == ferry
        assert python_class_for(ferry) is py

    def test_atom_type_for_unknown(self):
        with pytest.raises(KeyError):
            atom_type_for(dict)
