"""Unit tests for value/type mapping (the QA conversions)."""

import datetime

import pytest

from repro.errors import QTypeError
from repro.ftypes import (
    BoolT,
    DateT,
    DoubleT,
    IntT,
    ListT,
    StringT,
    TimeT,
    TupleT,
    check_value,
    infer_type,
    normalize_value,
)


class TestInferAtoms:
    @pytest.mark.parametrize("value, ty", [
        (True, BoolT), (False, BoolT),
        (0, IntT), (-17, IntT),
        (3.5, DoubleT),
        ("", StringT), ("ferry", StringT),
        (datetime.date(2009, 6, 29), DateT),
        (datetime.time(12, 30), TimeT),
    ])
    def test_atoms(self, value, ty):
        assert infer_type(value) == ty

    def test_bool_is_not_int(self):
        # bool subclasses int in Python; the Ferry types stay distinct
        assert infer_type(True) == BoolT
        assert infer_type(1) == IntT

    def test_datetime_rejected(self):
        with pytest.raises(QTypeError):
            infer_type(datetime.datetime(2009, 6, 29, 12, 0))

    @pytest.mark.parametrize("bad", [None, {1: 2}, {1, 2}, object()])
    def test_unsupported_values(self, bad):
        with pytest.raises(QTypeError):
            infer_type(bad)


class TestInferStructures:
    def test_tuple(self):
        assert infer_type((1, "a")) == TupleT((IntT, StringT))

    def test_singleton_tuple_collapses(self):
        assert infer_type((1,)) == IntT

    def test_empty_tuple_rejected(self):
        with pytest.raises(QTypeError):
            infer_type(())

    def test_nested_list(self):
        assert infer_type([[1], [2, 3]]) == ListT(ListT(IntT))

    def test_list_with_leading_empty(self):
        # unification sees through empty prefixes
        assert infer_type([[], [1]]) == ListT(ListT(IntT))
        assert infer_type([[1], []]) == ListT(ListT(IntT))

    def test_deep_empty(self):
        assert infer_type([[[]], [[1.5]]]) == ListT(ListT(ListT(DoubleT)))

    def test_fully_empty_needs_hint(self):
        with pytest.raises(QTypeError):
            infer_type([])
        with pytest.raises(QTypeError):
            infer_type([[], []])

    def test_hint_resolves_empty(self):
        assert infer_type([], hint=ListT(IntT)) == ListT(IntT)

    def test_heterogeneous_list_rejected(self):
        with pytest.raises(QTypeError):
            infer_type([1, "a"])

    def test_heterogeneous_nested_rejected(self):
        with pytest.raises(QTypeError):
            infer_type([[1], ["a"]])


class TestCheckValue:
    def test_int_accepted_at_double(self):
        check_value(3, DoubleT)

    def test_bool_not_accepted_at_int(self):
        with pytest.raises(QTypeError):
            check_value(True, IntT)

    def test_tuple_arity(self):
        with pytest.raises(QTypeError):
            check_value((1, 2, 3), TupleT((IntT, IntT)))

    def test_list_elements_checked(self):
        with pytest.raises(QTypeError):
            check_value([1, "x"], ListT(IntT))

    def test_nested_ok(self):
        check_value([(1, ["a"])], ListT(TupleT((IntT, ListT(StringT)))))


class TestNormalize:
    def test_widen_int_to_double(self):
        assert normalize_value(3, DoubleT) == 3.0
        assert isinstance(normalize_value(3, DoubleT), float)

    def test_widen_recursively(self):
        out = normalize_value([(1, 2)], ListT(TupleT((IntT, DoubleT))))
        assert out == [(1, 2.0)]
        assert isinstance(out[0][1], float)

    def test_identity_elsewhere(self):
        assert normalize_value("x", StringT) == "x"
