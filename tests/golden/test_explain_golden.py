"""Golden tests: committed codegen output for the paper's running example.

The expected algebra pretty-print, SQL text, MIL program, and engine
schedule for the Section 2 running example live under
``tests/golden/data/``.  Any codegen or optimizer change that alters the
emitted artifacts shows up here as a reviewable text diff instead of a
silent behaviour shift.

To regenerate after an intentional change:

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/golden -q

then review the diff of ``tests/golden/data`` before committing.
"""

import difflib
import os
import pathlib
import re

import pytest

from repro import Connection
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset

DATA = pathlib.Path(__file__).parent / "data"
UPDATE = os.environ.get("UPDATE_GOLDENS") == "1"


def render(backend: str) -> str:
    """The golden text for one backend: per-query header, algebra plan,
    and the backend's generated artifact."""
    db = Connection(backend=backend, catalog=paper_dataset())
    report = db.explain(running_example_query(db))
    chunks = [f"result type: {report.result_type}",
              f"bundle size: {report.bundle_size}"]
    for q in report.queries:
        chunks.append(q.header)
        chunks.append("[algebra]")
        chunks.append(q.plan)
        chunks.append(f"[{backend} artifact]")
        chunks.append(q.artifact or "(none)")
    return "\n".join(chunks) + "\n"


def check_golden(name: str, actual: str) -> None:
    path = DATA / f"{name}.txt"
    if UPDATE:
        path.write_text(actual)
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with UPDATE_GOLDENS=1")
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), actual.splitlines(),
            fromfile=f"golden/{name}", tofile="actual", lineterm=""))
        pytest.fail(
            f"codegen drifted from the committed golden for {name!r}.\n"
            f"If the change is intentional, regenerate with "
            f"UPDATE_GOLDENS=1 and commit the diff.\n{diff}")


@pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
def test_running_example_explain_matches_golden(backend):
    check_golden(f"running_example_{backend}", render(backend))


def _normalize_timings(text: str) -> str:
    """Mask the non-deterministic parts of an analyze render (wall times
    and the percentages derived from them); rows, refs, and widths stay
    exact."""
    text = re.sub(r"\b\d+\.\d{3} ms", "T ms", text)
    return re.sub(r"\b\d+\.\d% ", "P% ", text)


def render_analyze(backend: str) -> str:
    """The golden text for one backend's EXPLAIN ANALYZE: the annotated
    per-query plans with timings masked."""
    db = Connection(backend=backend, catalog=paper_dataset())
    report = db.explain(running_example_query(db), analyze=True)
    return _normalize_timings(report.analyze.render()) + "\n"


@pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
def test_running_example_analyze_matches_golden(backend):
    check_golden(f"analyze_running_example_{backend}",
                 render_analyze(backend))


def test_goldens_agree_on_the_algebra_plans():
    """The algebra section is backend-independent: every golden file must
    embed the identical optimized plans."""
    def plans(name):
        text = (DATA / f"{name}.txt").read_text()
        keep, keeping = [], False
        for line in text.splitlines():
            if line == "[algebra]":
                keeping = True
                continue
            if line.startswith("[") and line.endswith("artifact]"):
                keeping = False
                continue
            if keeping:
                keep.append(line)
        return keep
    engine = plans("running_example_engine")
    assert engine == plans("running_example_sqlite")
    assert engine == plans("running_example_mil")
    assert any("TableScan" in line for line in engine)
