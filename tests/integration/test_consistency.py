"""Cross-layer consistency: the interpreter, the compiler rule table, and
the frontend must agree on the builtin vocabulary."""

from repro.core import RULE_NAMES
from repro.semantics import BUILTIN_NAMES


class TestBuiltinVocabulary:
    def test_every_compiled_builtin_has_reference_semantics(self):
        assert RULE_NAMES <= BUILTIN_NAMES

    def test_every_interpreted_builtin_is_compilable(self):
        assert BUILTIN_NAMES <= RULE_NAMES

    def test_frontend_only_emits_known_builtins(self):
        import repro.frontend.combinators as C
        from repro import nil, to_q
        from repro.expr import AppE, walk
        from repro.ftypes import IntT

        # build one of everything and walk the ASTs
        xs = to_q([1, 2, 3])
        bxs = to_q([True])
        pairs = to_q([(1, "a")])
        nested = to_q([[1]])
        queries = [
            C.fmap(lambda x: x, xs), C.ffilter(lambda x: x > 0, xs),
            C.concat_map(lambda x: nil(IntT), xs), C.concat(nested),
            C.sort_with(lambda x: x, xs), C.sort_with_desc(lambda x: x, xs),
            C.group_with(lambda x: x, xs),
            C.all_q(lambda x: x > 0, xs), C.any_q(lambda x: x > 0, xs),
            C.take_while(lambda x: x > 0, xs),
            C.drop_while(lambda x: x > 0, xs),
            C.head(xs), C.last(xs), C.the(xs), C.tail(xs), C.init(xs),
            C.length(xs), C.null(xs), C.reverse(xs), C.append(xs, xs),
            C.cons(0, xs), C.index(xs, 0), C.take(1, xs), C.drop(1, xs),
            C.zip_q(xs, xs), C.nub(xs), C.number(xs), C.fsum(xs),
            C.favg(xs), C.maximum_q(xs), C.minimum_q(xs), C.and_q(bxs),
            C.or_q(bxs), C.elem(1, xs), C.unzip_q(pairs),
            C.split_at(1, xs), C.snoc(xs, 9), C.zip3_q(xs, xs, xs),
            C.zip_with(lambda a, b: a, xs, xs),
            C.span_q(lambda x: x > 0, xs),
        ]
        seen = set()
        for q in queries:
            for node in walk(q.exp):
                if isinstance(node, AppE):
                    seen.add(node.fun)
        assert seen <= RULE_NAMES
        # and the combinator surface covers most of the rule table
        assert len(seen) >= len(RULE_NAMES) - 1
