"""Every example script must run to completion (small scales)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bundle size     : 2 queries" in out
        assert "avoids query avalanches" in out

    def test_quickstart_show_sql(self):
        out = run_example("quickstart.py", "--show-sql")
        assert "DENSE_RANK() OVER" in out
        assert "SELECT DISTINCT" in out

    def test_pipeline_tour(self):
        out = run_example("pipeline_tour.py")
        assert "step 1" in out
        assert "ROW_NUMBER" in out
        assert "[('eng', 260), ('ops', 175)]" in out

    def test_sparse_vector(self):
        out = run_example("sparse_vector.py", "--size", "64")
        assert "42.0" in out
        assert "equi-joins (bpermuteP)" in out

    def test_avalanche_table1(self):
        out = run_example("avalanche_table1.py", "-n", "5", "10",
                          "--runs", "1")
        assert "# categories" in out
        assert "2" in out

    def test_nested_orders(self):
        out = run_example("nested_orders.py")
        assert "bundle size : 3 queries" in out
        assert "independent of the number of customers" in out
