"""Failure injection: every documented error path raises precisely."""

import pytest

from repro import (
    Connection,
    PartialFunctionError,
    QTypeError,
    SchemaError,
    UnsupportedError,
    favg,
    fmap,
    foldr,
    head,
    index,
    last,
    maximum_q,
    nil,
    table,
    the,
    to_q,
)
from repro.errors import FerryError
from repro.ftypes import IntT


@pytest.fixture(params=("engine", "sqlite", "mil"))
def db(request):
    conn = Connection(backend=request.param)
    conn.create_table("t", [("n", int)], [(1,), (2,)])
    return conn


class TestSchemaFailures:
    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.run(table("missing", {"n": int}))

    def test_row_type_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.run(table("t", {"n": str}))

    def test_extra_column_mismatch(self, db):
        with pytest.raises(SchemaError):
            db.run(table("t", [("n", int), ("m", int)]))

    def test_errors_are_ferry_errors(self, db):
        with pytest.raises(FerryError):
            db.run(table("missing", {"n": int}))


class TestPartialOperations:
    def test_head_of_empty(self, db):
        with pytest.raises(PartialFunctionError):
            db.run(head(db.table("t").filter(lambda n: n > 99)))

    def test_last_the_of_empty(self, db):
        empty = db.table("t").filter(lambda n: n > 99)
        with pytest.raises(PartialFunctionError):
            db.run(last(empty))
        with pytest.raises(PartialFunctionError):
            db.run(the(empty))

    def test_maximum_avg_of_empty(self, db):
        empty = db.table("t").filter(lambda n: n > 99)
        with pytest.raises(PartialFunctionError):
            db.run(maximum_q(empty))
        with pytest.raises(PartialFunctionError):
            db.run(favg(empty))

    def test_index_out_of_bounds(self, db):
        with pytest.raises(PartialFunctionError):
            db.run(index(db.table("t"), 99))

    def test_division_by_zero(self, db):
        with pytest.raises(PartialFunctionError):
            db.run(fmap(lambda n: n // (n - n), db.table("t")))


class TestConstructionFailures:
    def test_general_folds(self):
        with pytest.raises(UnsupportedError):
            foldr(lambda a, b: a, 0, to_q([1]))

    def test_ill_typed_queries_fail_before_run(self):
        with pytest.raises(QTypeError):
            to_q(1) + "a"
        with pytest.raises(QTypeError):
            fmap(lambda x: x, to_q(1))

    def test_lambda_errors_carry_context(self):
        with pytest.raises(QTypeError) as err:
            fmap(lambda x: x + "a", to_q([1]))
        assert "map" in str(err.value)


class TestDocumentedDeviations:
    def test_tail_of_empty_is_empty_when_compiled(self, db):
        """`tail []` errors in Haskell and in the reference interpreter;
        relationally the rows simply vanish -- an empty result.  The
        deviation is documented in repro.core.lift_builtins."""
        from repro import tail
        empty = db.table("t").filter(lambda n: n > 99)
        assert db.run(tail(empty)) == []

    def test_oracle_raises_for_tail_of_empty(self):
        from repro import tail
        from repro.semantics import Interpreter
        with pytest.raises(PartialFunctionError):
            Interpreter().run(tail(nil(IntT)).exp)
