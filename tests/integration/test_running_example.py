"""End-to-end: the paper's Section 2 running example, on every backend.

The expected result is the nested list printed in the paper:

    [("API", []),
     ("LIB", ["respects list order", ...]),
     ("LIN", ["supports data nesting", ...]),
     ("ORM", ["supports data nesting", ...]),
     ("QLA", ["avoids query avalanches", ...])]
"""

from repro.bench.table1 import running_example_query


def result_of(db):
    return db.run(running_example_query(db))


class TestRunningExample:
    def test_categories_in_order(self, any_backend_db):
        result = result_of(any_backend_db)
        assert [cat for cat, _ in result] == [
            "API", "LIB", "LIN", "ORM", "QLA"]

    def test_api_category_has_no_features(self, any_backend_db):
        result = dict(result_of(any_backend_db))
        assert result["API"] == []

    def test_paper_shape_holds(self, any_backend_db):
        result = dict(result_of(any_backend_db))
        assert "respects list order" in result["LIB"]
        assert "supports data nesting" in result["LIN"]
        assert "supports data nesting" in result["ORM"]
        assert "avoids query avalanches" in result["QLA"]

    def test_nub_removed_duplicates(self, any_backend_db):
        for _cat, meanings in result_of(any_backend_db):
            assert len(meanings) == len(set(meanings))

    def test_two_queries(self, paper_db):
        compiled = paper_db.compile(running_example_query(paper_db))
        assert compiled.query_count == 2

    def test_dsh_features_from_figure_one(self, paper_db):
        # Figure 1 gives DSH all of: list, nest, comp, aval, type, SQL!
        result = dict(result_of(paper_db))
        lib = set(result["LIB"])  # DSH and HaskellDB together
        assert {"respects list order", "supports data nesting",
                "avoids query avalanches",
                "is statically type-checked",
                "guarantees translation to SQL",
                "has compositional syntax and semantics"} <= lib


class TestAlternativeFormulations:
    def test_fluent_combinator_formulation(self, paper_db):
        from repro import concat_map, fst, group_with, nub, the, tup
        facilities = paper_db.table("facilities")
        features = paper_db.table("features")
        meanings = paper_db.table("meanings")

        def descr(f):
            return concat_map(
                lambda m: meanings.filter(lambda me: me[0] == m[1])
                                  .map(lambda me: me[1]),
                features.filter(lambda ft: ft[0] == f))

        q = group_with(lambda r: r[0], facilities).map(
            lambda g: tup(the(g.map(fst)),
                          nub(concat_map(lambda r: descr(r[1]), g))))
        assert q.ty.show() == "[(String, [String])]"
        fluent = paper_db.run(q)
        quoted = result_of(paper_db)
        assert ([(c, sorted(m)) for c, m in fluent]
                == [(c, sorted(m)) for c, m in quoted])

    def test_pyq_formulation(self, paper_db):
        from repro import pyq
        features = paper_db.table("features")
        meanings = paper_db.table("meanings")
        q = pyq("[m for (f2, m) in meanings"
                " for (fac, f) in features"
                " if f == f2 and fac == x]",
                meanings=meanings, features=features, x="DSH")
        assert sorted(paper_db.run(q)) == sorted([
            "respects list order", "supports data nesting",
            "has compositional syntax and semantics",
            "avoids query avalanches", "is statically type-checked",
            "guarantees translation to SQL"])
