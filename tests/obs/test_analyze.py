"""EXPLAIN ANALYZE: per-operator/per-query execution profiles."""

import json
import re

import pytest

from repro import AnalyzeReport, Connection, to_q
from repro.bench.table1 import running_example_query
from repro.obs import AnalyzeCollector, build_analyze


class TestEnginePerOperator:
    """The engine interprets the DAG node by node, so analyze gets a
    full per-operator breakdown."""

    def test_every_operator_is_profiled(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db),
                                  analyze=True)
        analyze = report.analyze
        assert isinstance(analyze, AnalyzeReport)
        assert analyze.backend == "engine"
        assert len(analyze.queries) == 2
        for qp in analyze.queries:
            assert qp.ops, "engine must profile per operator"
            assert qp.rows > 0
            assert qp.time >= 0.0
            for op in qp.ops:
                assert op.time >= 0.0
                assert op.rows_in >= 0 and op.rows_out >= 0
                assert op.width >= 1

    def test_refs_match_plan_text_numbering(self, paper_db):
        """OpProfile.ref is the postorder index -- the same ``@n`` the
        pretty-printer assigns, so annotations line up with the plan."""
        q = running_example_query(paper_db)
        compiled = paper_db.compile(q)
        report = paper_db.explain(q, analyze=True)
        from repro.algebra import plan_text, postorder
        for qp, query in zip(report.analyze.queries, compiled.bundle.queries):
            nodes = list(postorder(query.plan))
            assert [op.ref for op in qp.ops] == list(range(len(nodes)))
            text = plan_text(query.plan)
            for op in qp.ops:
                assert f"@{op.ref} " in text or f"@{op.ref}\n" in text \
                    or text.startswith(f"@{op.ref}")

    def test_peak_width_is_max_over_operators(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db),
                                  analyze=True)
        for qp in report.analyze.queries:
            assert qp.peak_width == max(op.width for op in qp.ops)

    def test_root_rows_out_equals_query_rows(self, paper_db):
        """The last postorder node is the plan root: its output
        cardinality is the query's delivered row count."""
        report = paper_db.explain(running_example_query(paper_db),
                                  analyze=True)
        for qp in report.analyze.queries:
            assert qp.ops[-1].rows_out == qp.rows


class TestOtherBackends:
    """SQLite/MIL run each query as one opaque artifact: per-query
    granularity, no operator breakdown."""

    @pytest.mark.parametrize("backend", ["sqlite", "mil"])
    def test_per_query_profiles(self, paper_catalog, backend):
        db = Connection(backend=backend, catalog=paper_catalog)
        report = db.explain(running_example_query(db), analyze=True)
        analyze = report.analyze
        assert analyze.backend == backend
        assert len(analyze.queries) == 2
        assert analyze.total_rows > 0
        for qp in analyze.queries:
            assert qp.ops == []
            assert qp.peak_width is None
            assert qp.rows > 0
            assert qp.time >= 0.0

    def test_all_backends_agree_on_rows(self, paper_catalog):
        rows = set()
        for backend in ("engine", "sqlite", "mil"):
            db = Connection(backend=backend, catalog=paper_catalog)
            report = db.explain(running_example_query(db), analyze=True)
            rows.add(tuple(qp.rows for qp in report.analyze.queries))
        assert len(rows) == 1, f"backends disagree on cardinalities: {rows}"


class TestReportSurface:
    def test_plain_explain_has_no_analyze(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        assert report.analyze is None
        assert "== analyze" not in str(report)

    def test_analyze_counts_as_a_real_execution(self, paper_db):
        before = paper_db.executions
        paper_db.explain(running_example_query(paper_db), analyze=True)
        assert paper_db.executions == before + 1

    def test_render_annotates_the_plan(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db),
                                  analyze=True)
        text = str(report)
        assert "== analyze (backend=engine" in text
        assert re.search(r"-- Q1 .*\[rows=\d+ est_rows=[\d.]+ "
                         r"time=\d+\.\d+ ms \(\d+\.\d+% of bundle\)\]",
                         text)
        # per-operator annotation on at least every plan line with a ref
        assert re.search(r"\[\d+\.\d+ ms \d+\.\d+% \| in=\d+ out=\d+ "
                         r"est_rows=[\d.]+ w=\d+ cum=\d+\.\d+ ms\]", text)

    def test_to_dict_round_trips_through_json(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db),
                                  analyze=True)
        data = json.loads(json.dumps(report.to_dict()))
        analyze = data["analyze"]
        assert analyze["backend"] == "engine"
        assert analyze["total_rows"] == report.analyze.total_rows
        assert [q["index"] for q in analyze["queries"]] == [1, 2]
        for q in analyze["queries"]:
            assert q["peak_width"] == max(op["width"] for op in q["ops"])

    def test_cumulative_time_of_root_covers_the_query(self, paper_db):
        """The root's inclusive subtree time equals the sum of every
        operator's exclusive time (shared DAG nodes counted once)."""
        q = running_example_query(paper_db)
        compiled = paper_db.compile(q)
        collector = AnalyzeCollector(per_op=True)
        paper_db._execute(compiled.bundle,
                          paper_db._codegen(compiled),
                          collector=collector)
        from repro.obs.analyze import _subtree_time
        from repro.algebra import postorder
        for qp, query in zip(collector.queries, compiled.bundle.queries):
            nodes = list(postorder(query.plan))
            times = {id(n): op.time for n, op in zip(nodes, qp.ops)}
            root_cum = _subtree_time(query.plan, times)
            assert root_cum == pytest.approx(
                sum(op.time for op in qp.ops))

    def test_build_analyze_shares_and_totals(self, paper_db):
        """Query shares are computed against the supplied bundle total."""
        q = to_q([1, 2, 3])
        compiled = paper_db.compile(q)
        collector = AnalyzeCollector()
        qp = collector.query(1)
        qp.time, qp.rows = 0.25, 3
        report = build_analyze(compiled.bundle, collector, "engine",
                               total_time=0.5)
        assert report.total_time == 0.5
        assert report.total_rows == 3
        assert "(50.0% of bundle)" in report.annotated[0]
