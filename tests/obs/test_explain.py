"""``Connection.explain``: the structured report and its render."""

import json

from repro import Connection, ExplainReport, fsum, to_q, tup
from repro.bench.table1 import running_example_query


class TestExplainReport:
    def test_structured_fields(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        assert isinstance(report, ExplainReport)
        assert report.backend == "engine"
        assert report.result_type == "[(String, [String])]"
        assert report.bundle_size == 2
        assert report.list_constructors == 2
        assert report.expected_bundle_size == 2
        assert report.avalanche_ok
        assert report.fingerprint and len(report.fingerprint) == 64

    def test_cache_status_flips_on_second_explain(self, paper_catalog):
        db = Connection(catalog=paper_catalog)
        q = running_example_query(db)
        assert db.explain(q).cache_hit is False
        assert db.explain(q).cache_hit is True

    def test_queries_carry_plans_and_operator_counts(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        assert len(report.queries) == 2
        for q in report.queries:
            assert q.plan.startswith("@")
            assert sum(q.operators.values()) > 0
            assert q.iter_col and q.pos_col and q.item_cols

    def test_engine_artifact_is_a_schedule(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        for q in report.queries:
            assert "TableScan" in q.artifact

    def test_sqlite_artifact_is_sql(self, paper_catalog):
        db = Connection(backend="sqlite", catalog=paper_catalog)
        report = db.explain(running_example_query(db))
        assert report.backend == "sqlite"
        for q in report.queries:
            assert "SELECT" in q.artifact

    def test_mil_artifact_is_a_program(self, paper_catalog):
        db = Connection(backend="mil", catalog=paper_catalog)
        report = db.explain(running_example_query(db))
        assert report.backend == "mil"
        for q in report.queries:
            assert ":=" in q.artifact and q.artifact.splitlines()[-1].startswith("return")

    def test_scalar_query_expected_size(self):
        db = Connection()
        report = db.explain(fsum(to_q([1, 2, 3])))
        # scalar results need one carrier query beyond the [.] count
        assert report.list_constructors == 0
        assert report.expected_bundle_size == 1 == report.bundle_size
        assert report.avalanche_ok

    def test_tuple_of_lists_expected_size(self):
        db = Connection()
        report = db.explain(tup(to_q([1]), to_q([True, False])))
        assert report.list_constructors == 2
        assert report.expected_bundle_size == 3 == report.bundle_size

    def test_render_and_str(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        text = str(report)
        assert "== explain (backend=engine) ==" in text
        assert "avalanche invariant OK" in text
        assert "-- Q1" in text and "-- Q2" in text
        assert "-- engine artifact for Q1" in text
        bare = report.render(plans=False, artifacts=False)
        assert "-- Q1" in bare and "TableScan" not in bare

    def test_to_dict_round_trips_through_json(self, paper_db):
        report = paper_db.explain(running_example_query(paper_db))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["avalanche_ok"] is True
        assert data["bundle_size"] == 2
        assert [q["index"] for q in data["queries"]] == [1, 2]
        assert "timings" in data

    def test_unoptimized_connection_explains_too(self, paper_catalog):
        db = Connection(catalog=paper_catalog, optimize=False)
        report = db.explain(running_example_query(db))
        assert report.bundle_size == 2 and report.avalanche_ok
        assert report.pass_stats is None
