"""Metric exposition: OpenMetrics round-trip, JSON snapshot, HTTP."""

import json
import urllib.error
import urllib.request

import pytest

from repro import Connection, dump_metrics, serve_metrics, to_q
from repro.bench.table1 import running_example_query
from repro.obs import (
    OPENMETRICS_CONTENT_TYPE,
    parse_openmetrics,
    render_openmetrics,
    snapshot_json,
    statements_json,
)
from repro.obs.export import _escape_label, _unescape_label
from repro.obs.metrics import METRICS, MetricsRegistry


@pytest.fixture()
def busy_db(paper_catalog):
    """A connection with some traffic behind it."""
    db = Connection(catalog=paper_catalog, slow_query_threshold=1e9)
    q = running_example_query(db)
    db.run(q)
    db.run(q)
    return db


class TestOpenMetricsRoundTrip:
    def test_process_registry_parses_cleanly(self, busy_db):
        families = parse_openmetrics(render_openmetrics())
        assert families  # the pipeline registered instruments
        assert families["ferry_connection_executions"]["type"] == "counter"
        assert families["ferry_phase_execute"]["type"] == "histogram"

    def test_values_match_the_registry(self):
        reg = MetricsRegistry()
        reg.counter("demo.count").inc(7)
        h = reg.histogram("demo.lat", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 3.0):
            h.observe(v)
        families = parse_openmetrics(render_openmetrics(reg))
        [(name, labels, value)] = families["ferry_demo_count"]["samples"]
        assert (name, labels, value) == ("ferry_demo_count_total", {}, 7.0)
        samples = {(n, labels.get("le")): v for n, labels, v
                   in families["ferry_demo_lat"]["samples"]}
        # cumulative buckets with le (<=) semantics: 1.0 lands in le="1"
        assert samples[("ferry_demo_lat_bucket", "1")] == 2.0
        assert samples[("ferry_demo_lat_bucket", "2")] == 2.0
        assert samples[("ferry_demo_lat_bucket", "+Inf")] == 3.0
        assert samples[("ferry_demo_lat_count", None)] == 3.0
        assert samples[("ferry_demo_lat_sum", None)] == 4.5

    def test_connection_gauges_are_labelled(self, busy_db):
        text = render_openmetrics(connections=[busy_db])
        families = parse_openmetrics(text)
        gauges = families["ferry_conn_executions"]
        assert gauges["type"] == "gauge"
        [(_, labels, value)] = gauges["samples"]
        assert labels == {"connection": "0", "backend": "engine"}
        assert value == 2.0
        [(_, _, hits)] = families["ferry_conn_plancache_hits"]["samples"]
        assert hits == 1.0
        [(_, _, rec)] = families["ferry_conn_querylog_recorded"]["samples"]
        assert rec == 2.0

    def test_terminates_with_eof(self):
        text = render_openmetrics(MetricsRegistry())
        assert text.endswith("# EOF\n")


class TestLabelEscaping:
    NASTY = ['plain', 'with "quotes"', 'line\nbreak', 'back\\slash',
             'all\\of "them"\ntogether', '\\', '"', '\n', '\\n']

    def test_escape_unescape_inverts(self):
        for value in self.NASTY:
            assert _unescape_label(_escape_label(value)) == value

    def test_escaped_output_is_single_line(self):
        for value in self.NASTY:
            assert "\n" not in _escape_label(value)

    def test_nasty_exemplar_labels_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram("esc.lat", bounds=(1.0,))
        for value in self.NASTY:
            h.reset()
            h.observe(0.5, exemplar={"ctx": value})
            families = parse_openmetrics(render_openmetrics(reg))
            exemplars = families["ferry_esc_lat"]["exemplars"]
            [(labels, ex_value, _ts)] = exemplars.values()
            assert labels == {"ctx": value}
            assert ex_value == 0.5

    def test_braces_and_commas_in_values_do_not_break_tokenizing(self):
        reg = MetricsRegistry()
        h = reg.histogram("tok.lat", bounds=(1.0,))
        h.observe(0.5, exemplar={"ctx": 'a="b",c}{d'})
        families = parse_openmetrics(render_openmetrics(reg))
        [(labels, _, _)] = families["ferry_tok_lat"]["exemplars"].values()
        assert labels == {"ctx": 'a="b",c}{d'}


class TestExemplars:
    def test_render_and_parse_bucket_exemplar(self):
        reg = MetricsRegistry()
        h = reg.histogram("ex.lat", bounds=(1.0, 10.0))
        h.observe(0.5, exemplar={"trace_id": "0000002a"})
        h.observe(5.0, exemplar={"trace_id": "0000002b"})
        text = render_openmetrics(reg)
        assert '# {trace_id="0000002a"} 0.5' in text
        families = parse_openmetrics(text)
        fam = families["ferry_ex_lat"]
        by_bucket = {}
        for idx, (labels, value, ts) in fam["exemplars"].items():
            name, sample_labels, _ = fam["samples"][idx]
            assert name == "ferry_ex_lat_bucket"
            by_bucket[sample_labels["le"]] = (labels, value, ts)
        assert by_bucket["1"][0] == {"trace_id": "0000002a"}
        assert by_bucket["10"][:2] == ({"trace_id": "0000002b"}, 5.0)
        assert by_bucket["10"][2] > 0  # timestamp present

    def test_bucket_keeps_its_worst_observation(self):
        reg = MetricsRegistry()
        h = reg.histogram("worst.lat", bounds=(1.0,))
        h.observe(0.5, exemplar={"trace_id": "aa"})
        h.observe(0.9, exemplar={"trace_id": "bb"})
        h.observe(0.2, exemplar={"trace_id": "cc"})
        [ex] = [e for e in h.snapshot()["exemplars"] if e is not None]
        assert ex["labels"] == {"trace_id": "bb"} and ex["value"] == 0.9

    def test_unexemplared_observations_cost_nothing(self):
        reg = MetricsRegistry()
        h = reg.histogram("none.lat", bounds=(1.0,))
        h.observe(0.5)
        assert h.snapshot()["exemplars"] == [None, None]
        assert " # " not in render_openmetrics(reg).split("# EOF")[0] \
            .split("ferry_none_lat_bucket")[1].splitlines()[0]

    def test_parser_rejects_exemplar_on_count_sample(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="+Inf"} 1\n'
               'h_count 1 # {a="b"} 0.5\n'
               "h_sum 0.5\n# EOF")
        with pytest.raises(ValueError, match="exemplar"):
            parse_openmetrics(bad)

    def test_parser_rejects_exemplar_outside_its_bucket(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 1 # {a="b"} 5.0\n'
               'h_bucket{le="+Inf"} 1\n'
               "h_count 1\nh_sum 5\n# EOF")
        with pytest.raises(ValueError, match="outside its le"):
            parse_openmetrics(bad)

    def test_parser_rejects_oversized_exemplar_labels(self):
        big = "x" * 130
        bad = ("# TYPE h histogram\n"
               f'h_bucket{{le="+Inf"}} 1 # {{a="{big}"}} 0.5\n'
               "h_count 1\nh_sum 0.5\n# EOF")
        with pytest.raises(ValueError, match="128"):
            parse_openmetrics(bad)

    def test_live_exemplar_names_a_retrievable_trace(self, paper_catalog):
        # Exemplars keep each bucket's *worst* observation since process
        # start; clear the phase histogram so this connection's runs are
        # the retained ones even mid-suite.
        METRICS.histogram("phase.execute").reset()
        busy_db = Connection(catalog=paper_catalog,
                             slow_query_threshold=1e9)
        q = running_example_query(busy_db)
        busy_db.run(q)
        busy_db.run(q)
        families = parse_openmetrics(
            render_openmetrics(connections=[busy_db]))
        fam = families["ferry_phase_execute"]
        assert fam["exemplars"], "traced runs must leave exemplars"
        trace_ids = {labels["trace_id"]
                     for labels, _, _ in fam["exemplars"].values()}
        assert any(busy_db.query_log.find_trace(tid) is not None
                   for tid in trace_ids)


class TestParserRejects:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_sample_before_type(self):
        with pytest.raises(ValueError, match="outside its family"):
            parse_openmetrics("x_total 1\n# EOF")

    def test_counter_must_end_in_total(self):
        with pytest.raises(ValueError, match="_total"):
            parse_openmetrics("# TYPE x counter\nx 1\n# EOF")

    def test_histogram_buckets_must_be_cumulative(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               'h_bucket{le="+Inf"} 3\n'
               "h_count 3\nh_sum 1\n# EOF")
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(bad)

    def test_histogram_inf_must_match_count(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 1\n'
               'h_bucket{le="+Inf"} 2\n'
               "h_count 3\nh_sum 1\n# EOF")
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(bad)

    def test_duplicate_family(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_openmetrics("# TYPE x counter\n# TYPE x counter\n# EOF")

    def test_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("# TYPE x counter\nx_total\n# EOF")


class TestJsonAndDump:
    def test_snapshot_json_structure(self, busy_db):
        doc = snapshot_json(connections=[busy_db])
        json.dumps(doc)  # JSON-able throughout
        assert doc["generated_at"] > 0
        assert "connection.executions" in doc["metrics"]
        [conn] = doc["connections"]
        assert conn["backend"] == "engine"
        assert conn["executions"] == 2
        assert conn["plan_cache"]["hits"] == 1
        assert conn["plan_cache"]["hit_rate"] == 0.5
        assert conn["query_log"]["recorded"] == 2

    def test_dump_metrics_dispatch(self, busy_db):
        text = dump_metrics("openmetrics", connections=[busy_db])
        assert parse_openmetrics(text)
        doc = json.loads(dump_metrics("json", connections=[busy_db]))
        assert doc["connections"][0]["executions"] == 2
        with pytest.raises(ValueError, match="unknown metrics format"):
            dump_metrics("xml")

    def test_default_format_is_openmetrics(self):
        assert dump_metrics().endswith("# EOF\n")


class TestHttpServer:
    def test_serves_openmetrics_and_json(self, busy_db):
        with serve_metrics(connections=[busy_db]) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == \
                    OPENMETRICS_CONTENT_TYPE
                text = resp.read().decode("utf-8")
            families = parse_openmetrics(text)
            assert "ferry_conn_executions" in families

            url = server.url.replace("/metrics", "/metrics.json")
            with urllib.request.urlopen(url) as resp:
                assert "application/json" in resp.headers["Content-Type"]
                doc = json.loads(resp.read().decode("utf-8"))
            assert doc["connections"][0]["backend"] == "engine"

    def test_unknown_path_is_404(self):
        with serve_metrics() as server:
            url = server.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(url)
            assert exc.value.code == 404

    def test_add_connection_after_start(self, paper_catalog):
        with serve_metrics(registry=MetricsRegistry()) as server:
            db = Connection(catalog=paper_catalog)
            db.run(to_q([1, 2]))
            server.add_connection(db)
            with urllib.request.urlopen(server.url) as resp:
                text = resp.read().decode("utf-8")
            families = parse_openmetrics(text)
            [(_, _, execs)] = \
                families["ferry_conn_executions"]["samples"]
            assert execs == 1.0

    def test_statements_endpoint(self, busy_db):
        with serve_metrics(connections=[busy_db]) as server:
            url = server.url.replace("/metrics", "/statements")
            with urllib.request.urlopen(url) as resp:
                assert "application/json" in resp.headers["Content-Type"]
                doc = json.loads(resp.read().decode("utf-8"))
        assert doc["totals"]["calls"] == 2
        assert doc["statements"][0]["calls"] == 2
        assert doc["connections"][0]["backend"] == "engine"
        assert 0.0 <= doc["cache_hit_rate"] <= 1.0

    def test_dashboard_endpoint(self, busy_db):
        with serve_metrics(connections=[busy_db]) as server:
            url = server.url.replace("/metrics", "/dashboard")
            with urllib.request.urlopen(url) as resp:
                assert "text/html" in resp.headers["Content-Type"]
                html = resp.read().decode("utf-8")
        assert "FERRY workload" in html
        assert "/statements" in html  # dashboard polls the JSON endpoint

    def test_404_names_all_routes(self):
        with serve_metrics() as server:
            url = server.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(url)
            body = exc.value.read().decode("utf-8")
        for route in ("/metrics", "/metrics.json", "/statements",
                      "/dashboard"):
            assert route in body


class TestStatementsJson:
    def test_structure_and_reconciliation(self, busy_db):
        doc = statements_json([busy_db])
        assert set(doc) == {"generated_at", "connections", "statements",
                            "totals", "cache_hit_rate"}
        [stmt] = doc["statements"]
        assert stmt["calls"] == 2
        assert stmt["cache_hits"] == 1  # second run hit the plan cache
        assert stmt["errors"] == 0
        snap = busy_db.statement_stats()
        assert doc["totals"]["calls"] == snap["totals"]["calls"]
        assert doc["totals"]["rows"] == snap["totals"]["rows"]

    def test_merges_same_fingerprint_across_connections(
            self, paper_catalog):
        a = Connection(catalog=paper_catalog)
        b = Connection(catalog=paper_catalog)
        q = to_q([1, 2, 3])
        a.run(q)
        a.run(q)
        b.run(q)
        doc = statements_json([a, b])
        [stmt] = doc["statements"]
        assert stmt["calls"] == 3
        assert doc["totals"]["calls"] == 3
        assert len(doc["connections"]) == 2

    def test_merge_does_not_mutate_connection_snapshots(
            self, paper_catalog):
        a = Connection(catalog=paper_catalog)
        b = Connection(catalog=paper_catalog)
        q = to_q([1, 2, 3])
        a.run(q)
        b.run(q)
        statements_json([a, b])
        # A second call sees the same per-connection numbers: the merge
        # copied entries instead of folding b into a's snapshot dict.
        doc = statements_json([a, b])
        [stmt] = doc["statements"]
        assert stmt["calls"] == 2


class TestRegistryOrdering:
    def test_export_order_is_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz").inc()
        reg.counter("aaa").inc()
        reg.histogram("mmm").observe(0.1)
        families = list(parse_openmetrics(render_openmetrics(reg)))
        assert families == ["ferry_aaa", "ferry_zzz", "ferry_mmm"]
        assert METRICS.counters() == sorted(
            METRICS.counters(), key=lambda c: c.name)
