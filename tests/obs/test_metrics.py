"""The metrics registry: instruments, snapshots, and pipeline wiring."""

import json
import threading

import pytest

from repro import METRICS, Connection, to_q
from repro.bench.table1 import running_example_query
from repro.obs.metrics import Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("x") is c  # get-or-create returns the same one

    def test_histogram_stats(self):
        h = Histogram("lat")
        for v in (0.5e-5, 2e-4, 2e-4, 0.5):
            h.observe(v)
        assert h.count == 4
        assert h.min == 0.5e-5 and h.max == 0.5
        assert h.mean == pytest.approx((0.5e-5 + 2e-4 + 2e-4 + 0.5) / 4)
        snap = h.snapshot()
        assert snap["buckets"]["<=1e-05"] == 1
        assert snap["buckets"]["<=0.001"] == 2
        assert snap["buckets"]["<=1"] == 1

    def test_histogram_bucket_boundaries_at_powers_of_two(self):
        """Bucket semantics are ``<=`` (bisect_right): an observation at
        an exact bound lands in that bound's bucket, not the next one --
        pinned at exact powers of two, which are exactly representable
        in binary floating point so no rounding can mask an off-by-one."""
        bounds = (1.0, 2.0, 4.0, 8.0)
        h = Histogram("pow2", bounds=bounds)
        for v in bounds:
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == {
            "<=1": 1, "<=2": 1, "<=4": 1, "<=8": 1, "+inf": 0,
        }
        # nudge one ulp above a bound: must spill into the next bucket
        import math
        h2 = Histogram("pow2.up", bounds=bounds)
        for v in bounds:
            h2.observe(math.nextafter(v, math.inf))
        snap2 = h2.snapshot()
        assert snap2["buckets"] == {
            "<=1": 0, "<=2": 1, "<=4": 1, "<=8": 1, "+inf": 1,
        }
        # ...and one ulp below stays within the same bound
        h3 = Histogram("pow2.down", bounds=bounds)
        for v in bounds:
            h3.observe(math.nextafter(v, 0.0))
        snap3 = h3.snapshot()
        assert snap3["buckets"] == {
            "<=1": 1, "<=2": 1, "<=4": 1, "<=8": 1, "+inf": 0,
        }

    def test_name_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.histogram("x")
        reg.histogram("y")
        with pytest.raises(ValueError):
            reg.counter("y")

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.histogram("a.lat").observe(0.01)
        snap = reg.snapshot()
        assert list(snap) == ["a.lat", "b.count"]
        assert snap["b.count"] == 2
        json.dumps(snap)  # must not raise

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0

    def test_counter_is_thread_safe(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        threads = [threading.Thread(
            target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestPipelineWiring:
    """The process-wide registry observes real executions."""

    def deltas(self, before, after):
        keys = set(before) | set(after)
        return {k: (after.get(k, 0), before.get(k, 0)) for k in keys
                if not isinstance(after.get(k), dict)}

    def test_run_counts_compiles_queries_and_rows(self, paper_catalog):
        before = METRICS.snapshot()
        db = Connection(catalog=paper_catalog)
        q = running_example_query(db)
        db.run(q)
        db.run(q)
        after = METRICS.snapshot()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("connection.compiles") == 2
        assert delta("connection.executions") == 2
        assert delta("connection.queries") == 4  # bundle of 2, run twice
        assert delta("plancache.hits") == 1
        assert delta("plancache.misses") == 1
        assert delta("plancache.inserts") == 1
        assert delta("backend.engine.queries") == 4
        assert delta("connection.rows_stitched") > 0
        assert (delta("connection.rows_stitched")
                == delta("backend.engine.rows"))

    @pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
    def test_every_backend_reports(self, paper_catalog, backend):
        before = METRICS.snapshot()
        db = Connection(backend=backend, catalog=paper_catalog)
        db.run(running_example_query(db))
        after = METRICS.snapshot()
        assert (after.get(f"backend.{backend}.queries", 0)
                - before.get(f"backend.{backend}.queries", 0)) == 2
        assert (after.get(f"backend.{backend}.rows", 0)
                - before.get(f"backend.{backend}.rows", 0)) > 0

    def test_phase_histograms_observe_cold_and_warm(self):
        before = METRICS.snapshot()
        db = Connection()
        q = to_q([[1, 2], [3]])
        db.run(q)
        db.run(q)
        after = METRICS.snapshot()
        for phase in ("check", "lookup", "lift", "optimize", "codegen",
                      "execute", "stitch"):
            name = f"phase.{phase}"
            grew = (after[name]["count"]
                    - (before[name]["count"] if name in before else 0))
            # lift/optimize/codegen run once (cold); the rest run twice
            expected = 1 if phase in ("lift", "optimize", "codegen") else 2
            assert grew == expected, (phase, grew)
            assert after[name]["sum"] >= 0.0
