"""The flight recorder: bounded retention, slow promotion, sampling."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Connection, QueryLog, to_q
from repro.bench.table1 import running_example_query
from repro.errors import FerryError
from repro.obs import (
    AlwaysSample,
    QueryLogEntry,
    RatioSample,
    SlowOnlySample,
    resolve_sampling,
)


def entry(duration: float, **kw) -> QueryLogEntry:
    defaults = dict(fingerprint="fp", backend="engine", kind="run",
                    started_at=0.0, duration=duration, cache_hit=False,
                    bundle_size=1, rows=0)
    defaults.update(kw)
    return QueryLogEntry(**defaults)


class TestRetention:
    @pytest.mark.property
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False), max_size=120),
           st.integers(min_value=1, max_value=9))
    def test_slowest_and_recent_views(self, durations, bound):
        """For any stream: ``recent`` is the last N newest-first, and
        ``slowest`` is the top-N by duration (ties broken toward the
        earlier execution), regardless of arrival order."""
        log = QueryLog(recent=bound, slowest=bound)
        entries = [entry(d) for d in durations]
        for e in entries:
            log.record(e)

        assert log.recorded == len(entries)
        assert log.recent == list(reversed(entries[-bound:]))

        # expected top-N: sort by (duration desc, arrival asc)
        ranked = sorted(enumerate(entries),
                        key=lambda t: (-t[1].duration, t[0]))
        expected = [e for _, e in ranked[:bound]]
        assert log.slowest == expected
        assert len(log.slowest) <= bound

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryLog(recent=0)
        with pytest.raises(ValueError):
            QueryLog(slowest=-1)

    def test_clear_keeps_cumulative_counts(self):
        log = QueryLog(recent=4, slowest=4)
        log.record(entry(1.0, slow=True))
        log.record(entry(2.0, error="ValueError('x')"))
        log.clear()
        assert log.recent == [] and log.slowest == []
        assert log.recorded == 2
        assert log.slow_count == 1 and log.error_count == 1

    def test_snapshot_is_json_able(self):
        log = QueryLog(recent=2, slowest=2)
        for d in (0.3, 0.1, 0.2):
            log.record(entry(d))
        snap = json.loads(json.dumps(log.snapshot()))
        assert snap["recorded"] == 3
        assert [e["duration"] for e in snap["recent"]] == [0.2, 0.1]
        assert [e["duration"] for e in snap["slowest"]] == [0.3, 0.2]
        assert snap["recent"][0]["traced"] is False


class TestConnectionRecording:
    def test_every_run_lands_in_the_log(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        paper_db.run(q)
        log = paper_db.query_log
        assert log.recorded == 2
        newest, oldest = log.recent
        assert newest.kind == "run" and newest.cache_hit is True
        assert oldest.cache_hit is False
        assert newest.fingerprint == oldest.fingerprint
        assert newest.bundle_size == 2
        assert newest.trace is paper_db.last_trace

    def test_prepared_execute_is_recorded(self, paper_db):
        handle = paper_db.prepare(running_example_query(paper_db))
        handle.execute()
        [rec] = paper_db.query_log.recent
        assert rec.kind == "execute-prepared"
        assert rec.cache_hit is True

    def test_failed_run_is_recorded_with_error(self, paper_db):
        with pytest.raises(FerryError):
            paper_db.run(_missing_table())
        [rec] = paper_db.query_log.recent
        assert rec.error is not None
        assert paper_db.query_log.error_count == 1

    def test_slow_run_is_promoted_with_a_profile(self, paper_catalog):
        db = Connection(catalog=paper_catalog, slow_query_threshold=0.0)
        db.run(running_example_query(db))
        [rec] = db.query_log.recent
        assert rec.slow is True
        assert rec.rows is not None and rec.rows > 0
        assert rec.analyze is not None
        assert rec.analyze.backend == "engine"
        assert len(rec.analyze.queries) == 2
        assert db.query_log.slow_count == 1

    def test_fast_run_is_not_promoted(self, paper_catalog):
        db = Connection(catalog=paper_catalog, slow_query_threshold=1e9)
        db.run(running_example_query(db))
        [rec] = db.query_log.recent
        assert rec.slow is False
        assert rec.analyze is None
        # the stopwatch still ran, so the row count is known
        assert rec.rows is not None and rec.rows > 0

    def test_no_threshold_means_no_stopwatch(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        [rec] = paper_db.query_log.recent
        # no stopwatch -> no promoted profile; the stitched-row count is
        # recorded regardless (it reconciles with connection.rows_stitched)
        assert rec.analyze is None
        assert rec.rows is not None and rec.rows > 0


def _missing_table():
    from repro.frontend.tables import table
    return table("nowhere", [("x", int)])


class TestErrorCodes:
    def test_coded_entries_accumulate_per_code(self):
        log = QueryLog()
        log.record(entry(0.1, error="boom", code="F301"))
        log.record(entry(0.1, error="boom", code="F301"))
        log.record(entry(0.1, error="boom", code="S400"))
        log.record(entry(0.1, error="boom"))  # codeless error
        assert log.error_count == 4
        assert log.error_codes == {"F301": 2, "S400": 1}

    def test_connection_surfaces_the_exceptions_code(self, paper_db,
                                                     monkeypatch):
        from repro.errors import VerifyError
        q = running_example_query(paper_db)
        paper_db.run(q)  # warm the plan cache first

        def broken(bundle, catalog, **kw):
            raise VerifyError("injected failure", code="F301")

        monkeypatch.setattr(paper_db.backend, "execute_bundle", broken)
        with pytest.raises(VerifyError):
            paper_db.run(q)
        newest, _ = paper_db.query_log.recent
        assert newest.error is not None
        assert newest.code == "F301"
        assert paper_db.query_log.snapshot()["error_codes"] == {"F301": 1}

    def test_codeless_errors_leave_codes_empty(self, paper_db):
        with pytest.raises(FerryError):
            paper_db.run(_missing_table())
        [rec] = paper_db.query_log.recent
        assert rec.code is None
        assert paper_db.query_log.error_codes == {}


class TestFindTrace:
    def test_resolves_a_recorded_trace_id(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        [rec] = paper_db.query_log.recent
        assert rec.trace_id is not None
        assert paper_db.query_log.find_trace(rec.trace_id) is rec

    def test_unknown_trace_id_is_none(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        assert paper_db.query_log.find_trace("not-a-trace-id") is None

    def test_untraced_connections_record_no_trace_id(self, paper_catalog):
        db = Connection(catalog=paper_catalog, trace=False)
        db.run(running_example_query(db))
        [rec] = db.query_log.recent
        assert rec.trace_id is None


class TestSampling:
    def test_resolve_specs(self):
        assert isinstance(resolve_sampling("always"), AlwaysSample)
        assert isinstance(resolve_sampling("slow-only"), SlowOnlySample)
        assert isinstance(resolve_sampling(0.5), RatioSample)
        policy = SlowOnlySample()
        assert resolve_sampling(policy) is policy
        with pytest.raises(ValueError):
            resolve_sampling("sometimes")
        with pytest.raises(ValueError):
            resolve_sampling(1.5)
        with pytest.raises(ValueError):
            resolve_sampling(True)

    def test_ratio_is_deterministic(self):
        policy = RatioSample(0.25)
        decisions = [policy.sample() for _ in range(100)]
        assert sum(decisions) == 25
        assert decisions[3] is True  # accumulator fires on the 4th call

    def test_ratio_connection_traces_the_expected_fraction(
            self, paper_catalog):
        db = Connection(catalog=paper_catalog, sampling=0.5)
        q = running_example_query(db)
        for _ in range(6):
            db.run(q)
        traced = [e for e in db.query_log.recent if e.trace is not None]
        assert len(traced) == 3
        assert db.query_log.recorded == 6  # untraced runs still logged

    def test_slow_only_retains_only_slow_traces(self, paper_catalog):
        fast = Connection(catalog=paper_catalog, sampling="slow-only",
                          slow_query_threshold=1e9)
        fast.run(running_example_query(fast))
        assert fast.last_trace is None
        assert fast.query_log.recent[0].trace is None

        slow = Connection(catalog=paper_catalog, sampling="slow-only",
                          slow_query_threshold=0.0)
        slow.run(running_example_query(slow))
        assert slow.last_trace is not None
        assert slow.query_log.recent[0].trace is slow.last_trace

    def test_zero_ratio_never_traces(self, paper_catalog):
        db = Connection(catalog=paper_catalog, sampling=0.0)
        for _ in range(5):
            db.run(to_q([1]))
        assert db.last_trace is None
        assert all(e.trace is None for e in db.query_log.recent)
