"""Workload reports and the baseline regression gate.

Covers the pure comparison logic (R100/R101/R200/R300 with their
budgets, floors, and tolerances) and the ``python -m repro.obs.report``
CLI end to end: exit 0 on a clean baseline, exit 1 on an injected 2x
latency regression under ``--fail-on-regress``, exit 2 on unloadable
input, and ``--dump`` producing a document that loads back as a
baseline.
"""

from __future__ import annotations

import json

import pytest

from repro import Connection
from repro.bench.table1 import running_example_query
from repro.bench.workloads import paper_dataset
from repro.obs import compare, load_snapshot, render_report
from repro.obs.export import statements_json
from repro.obs.report import FAILING_CODES, Finding, main


def stmt(fp="fp1", *, calls=10, rows=50, p50=0.010, p99=0.020,
         errors=0, **extra):
    base = {"fingerprint": fp, "calls": calls, "errors": errors,
            "rows": rows, "p50": p50, "p99": p99,
            "total_time": calls * (p50 or 0.0), "mean_time": p50 or 0.0}
    base.update(extra)
    return base


def doc(*statements):
    calls = sum(s["calls"] for s in statements)
    rows = sum(s["rows"] for s in statements)
    return {"statements": list(statements),
            "totals": {"calls": calls, "errors": 0, "rows": rows},
            "cache_hit_rate": 0.5}


class TestCompare:
    def test_identical_snapshots_are_clean(self):
        assert compare(doc(stmt()), doc(stmt())) == []

    def test_new_statement_is_r100_informational(self):
        [f] = compare(doc(stmt(), stmt("fp2")), doc(stmt()))
        assert f.code == "R100" and f.fingerprint == "fp2"
        assert not f.failing

    def test_vanished_statement_is_r101_informational(self):
        [f] = compare(doc(stmt()), doc(stmt(), stmt("fp2")))
        assert f.code == "R101" and f.fingerprint == "fp2"
        assert not f.failing

    def test_latency_regression_is_r200_failing(self):
        [f] = compare(doc(stmt(p50=0.010, p99=0.100)),
                      doc(stmt(p50=0.010, p99=0.020)))
        assert f.code == "R200" and f.failing
        assert "p99" in f.message

    def test_latency_within_budget_passes(self):
        assert compare(doc(stmt(p50=0.014, p99=0.028)),
                       doc(stmt(p50=0.010, p99=0.020)),
                       p50_ratio=1.5, p99_ratio=1.5) == []

    def test_min_time_floor_suppresses_noise(self):
        fast = doc(stmt(p50=0.0002, p99=0.0004))
        faster = doc(stmt(p50=0.0001, p99=0.0001))
        assert compare(fast, faster, min_time=0.001) == []
        assert [f.code for f in compare(fast, faster)] == ["R200", "R200"]

    def test_missing_quantiles_never_fire_r200(self):
        assert compare(doc(stmt(p50=None, p99=None)),
                       doc(stmt(p50=0.010, p99=0.020))) == []

    def test_rows_drift_is_r300_failing(self):
        [f] = compare(doc(stmt(rows=60)), doc(stmt(rows=50)))
        assert f.code == "R300" and f.failing
        assert "drifted" in f.message

    def test_rows_tolerance_allows_bounded_drift(self):
        cur, base = doc(stmt(rows=55)), doc(stmt(rows=50))
        assert compare(cur, base, rows_tolerance=0.2) == []
        [f] = compare(cur, base, rows_tolerance=0.05)
        assert f.code == "R300"

    def test_failing_codes_registry(self):
        assert FAILING_CODES == {"R200", "R300"}
        assert Finding("R200", "fp", "m").failing
        assert not Finding("R100", "fp", "m").failing


class TestLoadSnapshot:
    def test_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            load_snapshot()
        with pytest.raises(ValueError, match="exactly one"):
            load_snapshot("a.json", "http://x/statements")

    def test_rejects_non_snapshot_documents(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a snapshot"}))
        with pytest.raises(ValueError, match="statements"):
            load_snapshot(str(bad))

    def test_round_trips_a_real_snapshot(self, tmp_path):
        conn = Connection(catalog=paper_dataset())
        conn.run(running_example_query(conn))
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(statements_json([conn]), default=str))
        doc = load_snapshot(str(path))
        assert doc["totals"]["calls"] == 1


class TestRenderReport:
    def test_mentions_the_headline_numbers(self):
        text = render_report(doc(stmt(calls=7, rows=42)))
        assert "FERRY workload report" in text
        assert "calls=7" in text
        assert "fp1" in text

    def test_top_limits_the_table(self):
        many = doc(*[stmt(f"fp{i}") for i in range(20)])
        text = render_report(many, top=3)
        assert text.count("\nfp") == 3


class TestCli:
    def snapshot_path(self, tmp_path, document, name="snap.json"):
        path = tmp_path / name
        path.write_text(json.dumps(document, default=str))
        return str(path)

    def test_exit_0_on_clean_baseline(self, tmp_path, capsys):
        cur = self.snapshot_path(tmp_path, doc(stmt()))
        base = self.snapshot_path(tmp_path, doc(stmt()), "base.json")
        rc = main([cur, "--baseline", base, "--fail-on-regress"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_exit_1_on_2x_latency_regression(self, tmp_path, capsys):
        cur = self.snapshot_path(tmp_path,
                                 doc(stmt(p50=0.020, p99=0.040)))
        base = self.snapshot_path(tmp_path,
                                  doc(stmt(p50=0.010, p99=0.020)),
                                  "base.json")
        rc = main([cur, "--baseline", base, "--fail-on-regress"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "R200" in out and "FAIL" in out

    def test_regression_without_gate_flag_still_exits_0(self, tmp_path):
        cur = self.snapshot_path(tmp_path,
                                 doc(stmt(p50=0.020, p99=0.040)))
        base = self.snapshot_path(tmp_path,
                                  doc(stmt(p50=0.010, p99=0.020)),
                                  "base.json")
        assert main([cur, "--baseline", base]) == 0

    def test_exit_2_on_missing_snapshot(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "cannot load snapshot" in capsys.readouterr().err

    def test_exit_2_on_missing_baseline(self, tmp_path, capsys):
        cur = self.snapshot_path(tmp_path, doc(stmt()))
        rc = main([cur, "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_dump_writes_a_loadable_baseline(self, tmp_path, capsys):
        cur = self.snapshot_path(tmp_path, doc(stmt()))
        dumped = tmp_path / "golden.json"
        assert main([cur, "--dump", str(dumped)]) == 0
        assert main([cur, "--baseline", str(dumped),
                     "--fail-on-regress"]) == 0

    def test_live_url_source(self, tmp_path):
        from repro import serve_metrics
        conn = Connection(catalog=paper_dataset())
        conn.run(running_example_query(conn))
        with serve_metrics(connections=[conn]) as server:
            url = server.url.replace("/metrics", "/statements")
            rc = main(["--url", url])
        assert rc == 0


class TestGoldenBaseline:
    """The checked-in golden baseline must stay green for the example
    workload (CI also drives this end to end through
    ``examples/workload_dashboard.py --check``)."""

    def test_fresh_workload_passes_the_golden_gate(self):
        import pathlib
        import sys
        sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                               .parents[2] / "examples"))
        try:
            from workload_dashboard import GOLDEN, run_workload
        finally:
            sys.path.pop(0)
        baseline = load_snapshot(str(GOLDEN))
        current = statements_json(run_workload())
        findings = compare(current, baseline, min_time=0.02)
        failing = [f for f in findings if f.failing]
        assert not failing, "\n".join(f.render() for f in failing)
