"""Per-fingerprint statement statistics: the ``pg_stat_statements``
view.

Two layers under test.  First the :class:`StatementStats` aggregator
itself: exact counts, the LRU-eviction-into-overflow invariant (totals
stay exact no matter the fingerprint cardinality), quantiles, and the
compile-only accounting path.  Second the wiring: every
``Connection.run`` must land in the stats with numbers that *reconcile
exactly* against the process-wide METRICS counters -- including under
``parallel_bundles=True`` and sharded SQL execution, where the work fans
out over threads.
"""

from __future__ import annotations

import pytest

from repro import Connection, fmap, to_q
from repro.bench.table1 import running_example_query
from repro.bench.workloads import numbers_dataset, paper_dataset
from repro.errors import ObservabilityError
from repro.obs import EVICTED, UNFINGERPRINTED, StatementStats
from repro.obs.metrics import METRICS


def nested_probe(db):
    """Nested query whose inner member shards (decision ``S400``)."""
    features = db.table("features")
    return fmap(
        lambda f: features.filter(lambda g: g[0] == f[0]).map(
            lambda g: g[1]),
        db.table("facilities"))


def counters():
    """The METRICS counters the stats totals must reconcile against."""
    return {
        "executions": METRICS.counter("connection.executions").value,
        "queries": METRICS.counter("connection.queries").value,
        "rows": METRICS.counter("connection.rows_stitched").value,
        "errors": METRICS.counter("connection.errors").value,
    }


def reconcile(conn: Connection, before: dict) -> None:
    """Assert the connection's stats totals equal the METRICS deltas."""
    after = counters()
    totals = conn.statement_stats()["totals"]
    # ``connection.executions`` counts completed executions; failed runs
    # land in ``connection.errors`` instead.
    assert totals["calls"] == after["executions"] - before["executions"]
    assert totals["queries"] == after["queries"] - before["queries"]
    assert totals["rows"] == after["rows"] - before["rows"]
    assert totals["errors"] == after["errors"] - before["errors"]


class TestStatementStatsUnit:
    def test_capacity_and_reservoir_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            StatementStats(capacity=0)
        with pytest.raises(ValueError, match="reservoir"):
            StatementStats(reservoir=0)

    def test_record_accumulates_exact_counts(self):
        stats = StatementStats()
        stats.record("fp1", duration=0.1, rows=5, queries=2,
                     cache_hit=False)
        stats.record("fp1", duration=0.3, rows=5, queries=2,
                     cache_hit=True)
        entry = stats.get("fp1")
        assert entry["calls"] == 2
        assert entry["rows"] == 10
        assert entry["queries"] == 4
        assert entry["cache_hits"] == 1
        assert entry["total_time"] == pytest.approx(0.4)
        assert entry["min_time"] == pytest.approx(0.1)
        assert entry["max_time"] == pytest.approx(0.3)
        assert entry["mean_time"] == pytest.approx(0.2)

    def test_errors_counted_separately_with_codes(self):
        stats = StatementStats()
        stats.record("fp1", duration=0.1)
        stats.record("fp1", duration=0.1, error="boom", error_code="F301")
        stats.record("fp1", duration=0.1, error="boom", error_code="F301")
        stats.record("fp1", duration=0.1, error="boom")
        entry = stats.get("fp1")
        assert entry["calls"] == 1
        assert entry["errors"] == 3
        assert entry["error_codes"] == {"F301": 2}

    def test_none_fingerprint_lands_in_unfingerprinted(self):
        stats = StatementStats()
        stats.record(None, duration=0.1, error="boom")
        assert stats.get(UNFINGERPRINTED)["errors"] == 1

    def test_worst_trace_id_follows_max_time(self):
        stats = StatementStats()
        stats.record("fp1", duration=0.2, trace_id="aa")
        stats.record("fp1", duration=0.9, trace_id="bb")
        stats.record("fp1", duration=0.4, trace_id="cc")
        assert stats.get("fp1")["worst_trace_id"] == "bb"

    def test_quantiles_from_reservoir(self):
        stats = StatementStats()
        for ms in range(1, 101):
            stats.record("fp1", duration=ms / 1000.0)
        entry = stats.get("fp1")
        assert entry["p50"] == pytest.approx(0.050, abs=0.002)
        assert entry["p99"] == pytest.approx(0.099, abs=0.002)

    def test_shard_timings_build_per_shard_histograms(self):
        stats = StatementStats()
        stats.record("fp1", duration=0.5,
                     shard_timings=[(0, 0.2), (1, 0.3), (1, 0.1)])
        entry = stats.get("fp1")
        assert entry["by_shard"]["0"]["count"] == 1
        assert entry["by_shard"]["1"]["count"] == 2

    def test_record_compile_counts_no_call(self):
        stats = StatementStats()
        stats.record_compile("fp1", 0.05, cache_hit=False)
        stats.record_compile("fp1", 0.0, cache_hit=True)
        entry = stats.get("fp1")
        assert entry["calls"] == 0
        assert entry["cache_hits"] == 1
        assert entry["compile_time"] == pytest.approx(0.05)

    def test_reset_drops_everything(self):
        stats = StatementStats(capacity=1)
        stats.record("fp1", duration=0.1)
        stats.record("fp2", duration=0.1)  # evicts fp1
        stats.reset()
        snap = stats.snapshot()
        assert snap["tracked"] == 0
        assert snap["evicted"] is None
        assert snap["totals"]["calls"] == 0


class TestEvictionInvariant:
    def test_eviction_folds_into_overflow_keeping_totals_exact(self):
        stats = StatementStats(capacity=4)
        for i in range(20):
            stats.record(f"fp{i}", duration=0.01, rows=3, queries=2)
        snap = stats.snapshot()
        assert snap["tracked"] == 4
        assert snap["evicted_statements"] == 16
        assert snap["evicted"]["fingerprint"] == EVICTED
        assert snap["evicted"]["folded"] == 16
        # The invariant: totals across tracked + evicted are exact.
        assert snap["totals"]["calls"] == 20
        assert snap["totals"]["rows"] == 60
        assert snap["totals"]["queries"] == 40
        assert snap["totals"]["total_time"] == pytest.approx(0.2)

    def test_lru_evicts_least_recently_called(self):
        stats = StatementStats(capacity=2)
        stats.record("old", duration=0.1)
        stats.record("hot", duration=0.1)
        stats.record("hot", duration=0.1)  # touch: "old" is now LRU
        stats.record("new", duration=0.1)  # evicts "old"
        assert stats.get("old") is None
        assert stats.get("hot") is not None
        assert stats.get("new") is not None

    def test_evicted_bucket_carries_worst_case_forward(self):
        stats = StatementStats(capacity=1)
        stats.record("slow", duration=9.0, trace_id="tt")
        stats.record("fast", duration=0.1)  # evicts "slow"
        snap = stats.snapshot()
        assert snap["evicted"]["max_time"] == pytest.approx(9.0)
        assert snap["evicted"]["worst_trace_id"] == "tt"


class TestConnectionWiring:
    def test_run_populates_stats(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        paper_db.run(q)
        snap = paper_db.statement_stats()
        [stmt] = snap["statements"]
        assert stmt["calls"] == 2
        assert stmt["cache_hits"] == 1
        assert stmt["rows"] > 0
        assert stmt["queries"] > 0
        assert stmt["compile_time"] > 0.0
        assert stmt["execute_time"] > 0.0
        assert stmt["by_backend"]["engine"]["count"] == 2

    def test_fingerprint_matches_plan_cache(self, paper_db):
        q = running_example_query(paper_db)
        compiled = paper_db.compile(q)
        paper_db.run(q)
        assert paper_db.stats.get(compiled.fingerprint) is not None

    def test_worst_trace_resolves_in_flight_recorder(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        [stmt] = paper_db.statement_stats()["statements"]
        tid = stmt["worst_trace_id"]
        assert tid is not None
        assert paper_db.query_log.find_trace(tid) is not None

    def test_prepare_accounts_compile_only(self, paper_db):
        prepared = paper_db.prepare(running_example_query(paper_db))
        entry = paper_db.stats.get(prepared.fingerprint)
        assert entry["calls"] == 0
        assert entry["compile_time"] > 0.0
        prepared.execute()
        entry = paper_db.stats.get(prepared.fingerprint)
        assert entry["calls"] == 1

    def test_disabled_stats_raise_loudly(self, paper_catalog):
        conn = Connection(catalog=paper_catalog, statement_stats=False)
        conn.run(to_q([1, 2]))
        with pytest.raises(ObservabilityError, match="statement_stats"):
            conn.statement_stats()

    def test_failed_run_lands_in_errors(self, paper_db):
        from repro.frontend.tables import table
        with pytest.raises(Exception):
            paper_db.run(table("missing", [("n", int)]))
        totals = paper_db.statement_stats()["totals"]
        assert totals["errors"] == 1
        assert totals["calls"] == 0


class TestMetricsReconciliation:
    def test_engine_default(self):
        before = counters()
        conn = Connection(catalog=paper_dataset())
        q = running_example_query(conn)
        for _ in range(3):
            conn.run(q)
        conn.run(to_q([1, 2, 3]))
        reconcile(conn, before)
        assert conn.statement_stats()["totals"]["cache_hits"] == \
            conn.cache_stats.hits

    def test_parallel_bundles(self):
        before = counters()
        conn = Connection(catalog=paper_dataset(), parallel_bundles=True)
        q = nested_probe(conn)
        for _ in range(3):
            conn.run(q)
        reconcile(conn, before)

    def test_sharded_sql(self):
        before = counters()
        conn = Connection(shards=4, catalog=paper_dataset())
        q = nested_probe(conn)
        for _ in range(3):
            conn.run(q)
        reconcile(conn, before)
        [stmt] = conn.statement_stats()["statements"]
        # The inner member shards (S400): all four shards report time.
        assert set(stmt["by_shard"]) == {"0", "1", "2", "3"}
        assert stmt["by_shard"]["0"]["count"] == 3

    def test_errors_reconcile_too(self):
        from repro.frontend.tables import table
        before = counters()
        conn = Connection(catalog=numbers_dataset(5))
        conn.run(conn.table("nums").filter(lambda r: r > 2))
        with pytest.raises(Exception):
            conn.run(table("missing", [("n", int)]))
        reconcile(conn, before)
