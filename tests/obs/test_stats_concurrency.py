"""Statement stats under concurrency: ``Connection.run`` hammered from
many threads must lose no updates and create exactly one aggregate per
fingerprint.

The aggregator serializes mutation under one lock; these tests are the
empirical check that the wiring (``run`` -> ``_record_execution`` ->
``StatementStats.record``) preserves exactness when the *callers* race,
and that raw :class:`StatementStats` stays exact even while eviction is
churning the LRU under the same lock.
"""

from __future__ import annotations

import threading

import pytest

from repro import Connection
from repro.bench.workloads import numbers_dataset
from repro.errors import VerifyError
from repro.obs.stats import StatementStats

THREADS = 8
RUNS_PER_THREAD = 25


def hammer(n_threads, fn):
    """Run ``fn(worker_index)`` on ``n_threads`` threads, starting them
    on a barrier so the racy window actually overlaps; re-raise the
    first worker failure."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def body(i):
        barrier.wait()
        try:
            fn(i)
        except BaseException as err:  # pragma: no cover - failure path
            errors.append(err)

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestConnectionConcurrency:
    def test_no_lost_updates_no_duplicate_rows(self):
        conn = Connection(catalog=numbers_dataset(10))
        nums = conn.table("nums")
        queries = [
            nums.filter(lambda r: r > 2),
            nums.map(lambda r: r + 1),
            nums.filter(lambda r: r < 5).map(lambda r: r * 2),
        ]

        def worker(i):
            for j in range(RUNS_PER_THREAD):
                conn.run(queries[(i + j) % len(queries)])

        hammer(THREADS, worker)
        snap = conn.statement_stats()
        assert snap["totals"]["calls"] == THREADS * RUNS_PER_THREAD
        assert snap["totals"]["errors"] == 0
        # One aggregate per distinct program: no duplicate fingerprints.
        assert snap["tracked"] == len(queries)
        fps = [s["fingerprint"] for s in snap["statements"]]
        assert len(fps) == len(set(fps))
        # Every statement ran from several threads; rows stay exact.
        per_query_rows = {s["fingerprint"]: s["rows"]
                          for s in snap["statements"]}
        single = Connection(catalog=numbers_dataset(10))
        for q in queries:
            compiled = single.compile(q)
            expected_rows = len(single.run(q))
            calls = conn.stats.get(compiled.fingerprint)["calls"]
            assert per_query_rows[compiled.fingerprint] == \
                expected_rows * calls

    def test_errors_with_codes_counted_under_race(self, monkeypatch):
        conn = Connection(catalog=numbers_dataset(5))
        q = conn.table("nums").filter(lambda r: r > 1)
        conn.run(q)  # warm the plan cache before breaking the backend

        real = conn.backend.execute_bundle

        def flaky(bundle, catalog, **kw):
            if threading.current_thread().name.startswith("boom"):
                raise VerifyError("injected backend failure",
                                  code="F301")
            return real(bundle, catalog, **kw)

        monkeypatch.setattr(conn.backend, "execute_bundle", flaky)

        def worker(i):
            if i % 2:
                threading.current_thread().name = f"boom-{i}"
                for _ in range(RUNS_PER_THREAD):
                    with pytest.raises(VerifyError):
                        conn.run(q)
            else:
                for _ in range(RUNS_PER_THREAD):
                    conn.run(q)

        hammer(THREADS, worker)
        [stmt] = conn.statement_stats()["statements"]
        assert stmt["calls"] == 1 + (THREADS // 2) * RUNS_PER_THREAD
        assert stmt["errors"] == (THREADS // 2) * RUNS_PER_THREAD
        assert stmt["error_codes"] == {"F301": stmt["errors"]}


class TestAggregatorConcurrency:
    def test_exact_totals_while_eviction_churns(self):
        stats = StatementStats(capacity=8)
        per_thread = 200

        def worker(i):
            for j in range(per_thread):
                stats.record(f"fp{i}-{j % 40}", duration=0.001,
                             rows=2, queries=1)

        hammer(THREADS, worker)
        snap = stats.snapshot()
        total = THREADS * per_thread
        assert snap["totals"]["calls"] == total
        assert snap["totals"]["rows"] == 2 * total
        assert snap["totals"]["queries"] == total
        assert snap["tracked"] == 8
        # 320 distinct fingerprints cycling through 8 slots: a key can
        # evict, re-enter, and evict again, so the fold count is at
        # least distinct-minus-capacity (totals stay exact regardless).
        assert snap["evicted_statements"] >= THREADS * 40 - 8
