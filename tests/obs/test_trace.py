"""Trace spans: the run/execute span tree, sinks, and JSONL export."""

import io
import json

import pytest

from repro import CollectingSink, Connection, JsonLinesSink, ObservabilityError, to_q
from repro.bench.table1 import running_example_query
from repro.obs.trace import NULL_TRACER, Tracer

#: Spans the acceptance criteria require on a cold ``run``.
COLD_PHASES = {"check", "cache-lookup", "lift", "optimize", "codegen",
               "execute", "stitch"}


def span_names(trace):
    return [span.name for span, _ in trace.iter_spans()]


class TestRunSpanTree:
    def test_cold_run_covers_every_phase(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        trace = paper_db.last_trace
        assert trace is not None
        assert trace.root.name == "run"
        assert COLD_PHASES <= set(span_names(trace))

    def test_one_execute_span_per_bundle_query(self, any_backend_db):
        q = running_example_query(any_backend_db)
        compiled = any_backend_db.compile(q)
        any_backend_db.run(q)
        executes = any_backend_db.last_trace.find_all("execute")
        assert len(executes) == compiled.bundle.size == 2
        for i, span in enumerate(executes, start=1):
            assert span.attrs["query"] == i
            assert span.attrs["backend"] == any_backend_db.backend.name
            assert span.attrs["rows"] >= 0

    def test_optimize_has_per_pass_children(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        optimize = paper_db.last_trace.find("optimize")
        passes = {child.name for child in optimize.children}
        assert {"cse", "constfold", "icols", "projmerge"} <= passes
        for child in optimize.children:
            assert "round" in child.attrs and "removed" in child.attrs

    def test_warm_run_skips_lift_and_optimize(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        paper_db.run(q)
        names = set(span_names(paper_db.last_trace))
        assert "lift" not in names and "optimize" not in names
        assert {"check", "cache-lookup", "execute", "stitch"} <= names
        assert paper_db.last_trace.root.attrs["cache_hit"] is True

    def test_root_attrs_record_bundle_size(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        root = paper_db.last_trace.root
        assert root.attrs["bundle_size"] == 2
        assert root.attrs["backend"] == "engine"
        assert root.attrs["cache_hit"] is False

    def test_durations_are_positive_and_nested(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        trace = paper_db.last_trace
        for span, parent in trace.iter_spans():
            assert span.duration >= 0.0
            if parent is not None:
                assert span.duration <= parent.duration * 1.5 + 1e-6

    def test_trace_disabled_raises_on_last_trace(self, paper_catalog):
        db = Connection(catalog=paper_catalog, trace=False)
        assert db.run(to_q([1, 2])) == [1, 2]
        with pytest.raises(ObservabilityError, match="trace=True"):
            db.last_trace
        # the flight recorder still works without tracing
        assert db.query_log.recorded == 1


class TestPreparedTrace:
    def test_prepared_execute_records_trace(self, paper_db):
        handle = paper_db.prepare(running_example_query(paper_db))
        handle.execute()
        trace = paper_db.last_trace
        assert trace.root.name == "execute-prepared"
        assert len(trace.find_all("execute")) == 2
        assert trace.find("stitch") is not None
        # compilation happened at prepare() time, not here
        assert trace.find("lift") is None

    def test_reprepare_after_ddl_is_traced(self, paper_db):
        handle = paper_db.prepare(running_example_query(paper_db))
        paper_db.create_table("extra", [("n", int)], [(1,)])
        handle.execute()
        names = set(span_names(paper_db.last_trace))
        # the transparent re-prepare shows up as compile spans
        assert "lift" in names and "codegen" in names


class TestSinks:
    def test_collecting_sink_receives_every_trace(self, paper_db):
        sink = paper_db.add_sink(CollectingSink())
        q = running_example_query(paper_db)
        paper_db.run(q)
        paper_db.run(q)
        assert len(sink.traces) == 2
        assert sink.traces[-1] is paper_db.last_trace

    def test_remove_sink(self, paper_db):
        sink = paper_db.add_sink(CollectingSink())
        paper_db.remove_sink(sink)
        paper_db.run(to_q([1]))
        assert sink.traces == []

    def test_jsonl_sink_emits_one_record_per_span(self, paper_db):
        buf = io.StringIO()
        paper_db.add_sink(JsonLinesSink(buf))
        paper_db.run(running_example_query(paper_db))
        lines = [json.loads(line) for line in
                 buf.getvalue().strip().splitlines()]
        trace = paper_db.last_trace
        assert len(lines) == len(list(trace.iter_spans()))
        names = {rec["name"] for rec in lines}
        assert COLD_PHASES <= names
        assert len([r for r in lines if r["name"] == "execute"]) == 2
        # one shared trace id, root has no parent, children point back
        assert len({rec["trace"] for rec in lines}) == 1
        roots = [rec for rec in lines if rec["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "run"
        ids = {rec["span"] for rec in lines}
        assert all(rec["parent"] in ids for rec in lines
                   if rec["parent"] is not None)
        for rec in lines:
            assert rec["duration"] >= 0.0
            assert rec["cpu"] >= 0.0
            assert rec["offset"] >= 0.0

    def test_jsonl_sink_is_safe_under_concurrent_writers(self):
        """Many threads emitting into one sink never interleave lines
        mid-record: every line stays parseable, and each trace's records
        share one trace id and arrive contiguously."""
        import threading

        buf = io.StringIO()
        sink = JsonLinesSink(buf)
        spans_per_trace = 4
        traces_per_thread = 25
        n_threads = 8

        def writer():
            for _ in range(traces_per_thread):
                tracer = Tracer("run")
                for i in range(spans_per_trace - 1):
                    with tracer.span(f"step{i}"):
                        pass
                sink.emit(tracer.finish())

        threads = [threading.Thread(target=writer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        lines = buf.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]  # must all parse
        assert len(records) == n_threads * traces_per_thread * spans_per_trace
        by_trace: dict[int, list] = {}
        for rec in records:
            by_trace.setdefault(rec["trace"], []).append(rec)
        assert len(by_trace) == n_threads * traces_per_thread
        for recs in by_trace.values():
            assert len(recs) == spans_per_trace
            assert [r["span"] for r in recs] == list(range(spans_per_trace))
        # emits are atomic blocks: each trace's lines are contiguous
        seen_done: set[int] = set()
        last = None
        for rec in records:
            if rec["trace"] != last:
                assert rec["trace"] not in seen_done, "interleaved emit"
                if last is not None:
                    seen_done.add(last)
                last = rec["trace"]

    def test_jsonl_sink_to_file(self, paper_db, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesSink(str(path)) as sink:
            paper_db.add_sink(sink)
            paper_db.run(to_q([1, 2, 3]))
        lines = path.read_text().strip().splitlines()
        assert lines and all(json.loads(line)["trace"] for line in lines)


class TestTracerPrimitives:
    def test_nested_span_tree_shape(self):
        tracer = Tracer("root", kind="test")
        with tracer.span("a"):
            with tracer.span("a1"):
                pass
        with tracer.span("b") as sp:
            sp.set(rows=7)
        trace = tracer.finish()
        assert [s.name for s, _ in trace.iter_spans()] == \
            ["root", "a", "a1", "b"]
        assert trace.find("b").attrs == {"rows": 7}
        parents = {s.name: (p.name if p else None)
                   for s, p in trace.iter_spans()}
        assert parents == {"root": None, "a": "root", "a1": "a", "b": "root"}

    def test_render_mentions_names_and_attrs(self):
        tracer = Tracer("run", backend="engine")
        with tracer.span("execute", query=1):
            pass
        text = tracer.finish().render()
        assert "run" in text and "execute" in text and "query=1" in text

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1) as sp:
            sp.set(y=2)
        NULL_TRACER.root.set(z=3)
        assert NULL_TRACER.finish() is None

    def test_child_totals_clamped_to_parent(self):
        """Regression: coarse clocks (process_time ticks of ~1-10ms on
        some platforms) could make the children's summed CPU/wall time
        exceed their parent's own reading.  ``Span._finish`` clamps the
        parent up to the children's sum, so the containment invariant
        holds exactly at every level."""
        tracer = Tracer("root")
        with tracer.span("outer"):
            with tracer.span("inner-1") as sp:
                # forge a coarse-clock artifact: the child claims more
                # time than the parent's clocks will have seen
                sp._cpu_start -= 5.0
                sp.start -= 2.0
            with tracer.span("inner-2"):
                pass
        trace = tracer.finish()
        for span, _ in trace.iter_spans():
            if span.children:
                assert sum(c.duration for c in span.children) \
                    <= span.duration
                assert sum(c.cpu_time for c in span.children) \
                    <= span.cpu_time
        # the forged values really were extreme enough to need the clamp
        assert trace.find("outer").cpu_time >= 5.0
        assert trace.root.duration >= 2.0

    def test_real_trace_respects_containment(self, paper_db):
        """On a live trace the invariant must hold without tolerance
        (the old test allowed a 1.5x fudge factor)."""
        paper_db.run(running_example_query(paper_db))
        for span, _ in paper_db.last_trace.iter_spans():
            if span.children:
                assert sum(c.duration for c in span.children) \
                    <= span.duration
                assert sum(c.cpu_time for c in span.children) \
                    <= span.cpu_time

    def test_exception_still_closes_spans(self):
        tracer = Tracer("root")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        trace = tracer.finish()
        assert trace.find("boom").duration >= 0.0
        # the stack unwound: a later span is a sibling, not a child
        tracer2 = Tracer("root")
        try:
            with tracer2.span("first"):
                raise ValueError
        except ValueError:
            pass
        with tracer2.span("second"):
            pass
        trace2 = tracer2.finish()
        assert [s.name for s in trace2.root.children] == ["first", "second"]


class TestTraceIds:
    def test_tracer_owns_a_stable_id_from_birth(self):
        tracer = Tracer("run")
        tid = tracer.trace_id
        assert isinstance(tid, str) and tid
        with tracer.span("a"):
            pass
        assert tracer.trace_id == tid
        assert tracer.finish().trace_id == tid

    def test_trace_ids_are_unique_per_tracer(self):
        ids = {Tracer("run").trace_id for _ in range(100)}
        assert len(ids) == 100

    def test_null_tracer_has_no_id(self):
        assert NULL_TRACER.trace_id is None
        assert NULL_TRACER.detached("x").__enter__() is not None

    def test_detached_spans_inherit_the_parent_id(self):
        tracer = Tracer("run")
        handle = tracer.detached("execute", query=1)
        with handle:
            pass
        tracer.attach(handle)
        trace = tracer.finish()
        span = trace.find("execute")
        assert span.attrs["trace_id"] == tracer.trace_id

    def test_worker_spans_carry_the_run_id(self, paper_catalog):
        """Parallel bundles execute on worker threads via detached
        spans; every one must still name the run's trace id."""
        db = Connection(catalog=paper_catalog, parallel_bundles=True)
        db.run(running_example_query(db))
        trace = db.last_trace
        execs = [s for s, _ in trace.iter_spans() if s.name == "execute"]
        assert len(execs) == 2
        for span in execs:
            assert span.attrs["trace_id"] == trace.trace_id

    def test_shard_spans_carry_the_run_id(self, paper_catalog):
        from repro import fmap
        db = Connection(shards=2, catalog=paper_catalog)
        features = db.table("features")
        db.run(fmap(
            lambda f: features.filter(lambda g: g[0] == f[0]).map(
                lambda g: g[1]),
            db.table("facilities")))
        trace = db.last_trace
        sharded = [s for s, _ in trace.iter_spans()
                   if s.name == "execute" and "shard" in s.attrs
                   and s.attrs["shard"] != "fallback"]
        assert sharded, "the nested member must shard (S400)"
        for span in sharded:
            assert span.attrs["trace_id"] == trace.trace_id

    def test_entry_trace_id_matches_the_retained_trace(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        [rec] = paper_db.query_log.recent
        assert rec.trace is not None
        assert rec.trace_id == rec.trace.trace_id
