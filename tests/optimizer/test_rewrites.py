"""Optimizer rewrites: each pass in isolation, plus pipeline soundness."""

import pytest

from repro import Connection, ffilter, fmap, fsum, group_with, tup
from repro.algebra import (
    Attach,
    BinApp,
    Const,
    EqJoin,
    LitTable,
    Project,
    Select,
    UnionAll,
    node_count,
    schema_of,
)
from repro.analysis import check_plan
from repro.bench.workloads import paper_dataset
from repro.bench.table1 import running_example_query
from repro.ftypes import IntT
from repro.optimizer import optimize_plan
from repro.optimizer.rewrites import (
    eliminate_common_subexpressions,
    fold_constants,
    merge_projections,
    prune_unneeded_columns,
)


def leaf(*names):
    cols = tuple((n, IntT) for n in names)
    return LitTable(((1,) * len(names),), cols)


class TestCSE:
    def test_identical_projects_shared(self):
        base = leaf("a")
        p1 = Project(base, (("b", "a"),))
        p2 = Project(base, (("b", "a"),))
        u = UnionAll(p1, p2)
        out = eliminate_common_subexpressions(u)
        assert out.left is out.right
        assert node_count(out) == 3  # union + shared project + shared leaf

    def test_distinct_params_not_shared(self):
        base = leaf("a")
        u = UnionAll(Project(base, (("b", "a"),)),
                     Project(base, (("c", "a"),)))
        out = eliminate_common_subexpressions(u)
        assert out.left is not out.right  # different renames stay distinct


class TestConstFold:
    def test_binapp_over_two_consts(self):
        plan = BinApp(leaf("a"), "add", Const(2, IntT), Const(3, IntT), "c")
        out = fold_constants(plan)
        assert isinstance(out, Attach)
        assert out.value == 5

    def test_comparison_folds_to_bool(self):
        plan = BinApp(leaf("a"), "lt", Const(2, IntT), Const(3, IntT), "c")
        out = fold_constants(plan)
        assert out.value is True

    def test_reads_through_attach(self):
        plan = BinApp(Attach(leaf("a"), "k", 7, IntT), "add", "k", "a", "c")
        out = fold_constants(plan)
        assert isinstance(out, BinApp)
        assert isinstance(out.lhs, Const) and out.lhs.value == 7

    def test_division_by_zero_not_folded(self):
        plan = BinApp(leaf("a"), "idiv", Const(1, IntT), Const(0, IntT), "c")
        out = fold_constants(plan)
        assert isinstance(out, BinApp)  # stays a runtime error

    def test_select_true_removed(self):
        from repro.ftypes import BoolT
        plan = Select(Attach(leaf("a"), "t", True, BoolT), "t")
        out = fold_constants(plan)
        assert isinstance(out, Attach)


class TestIcols:
    def test_prunes_dead_attach(self):
        plan = Project(Attach(leaf("a"), "junk", 1, IntT), (("out", "a"),))
        out = prune_unneeded_columns(plan)
        assert node_count(out) == 2  # Attach gone

    def test_prunes_littable_columns(self):
        wide = LitTable(((1, 2, 3),),
                        (("a", IntT), ("b", IntT), ("c", IntT)))
        plan = Project(wide, (("out", "b"),))
        out = prune_unneeded_columns(plan)
        assert list(schema_of(out.child)) == ["b"]

    def test_distinct_blocks_pruning(self):
        from repro.algebra import Distinct
        wide = LitTable(((1, 2), (1, 3)), (("a", IntT), ("b", IntT)))
        plan = Project(Distinct(wide), (("out", "a"),))
        out = prune_unneeded_columns(plan)
        # pruning "b" below Distinct would merge the two rows
        assert list(schema_of(out.child.child)) == ["a", "b"]
        check_plan(out)

    def test_union_children_realigned(self):
        wide = leaf("a", "b")
        u = UnionAll(wide, leaf("a", "b"))
        plan = Project(u, (("out", "a"),))
        out = prune_unneeded_columns(plan)
        check_plan(out)

    def test_never_empties_a_relation(self):
        # a semijoin's right side is demanded only for its join column;
        # pruning must keep the relation's cardinality intact
        from repro.algebra import SemiJoin
        plan = SemiJoin(leaf("a"), Project(leaf("b", "c"), (("b", "b"),)),
                        (("a", "b"),))
        out = prune_unneeded_columns(plan)
        check_plan(out)
        assert len(schema_of(out)) >= 1


class TestProjMerge:
    def test_composes_chains(self):
        base = leaf("a")
        plan = Project(Project(base, (("b", "a"),)), (("c", "b"),))
        out = merge_projections(plan)
        assert isinstance(out, Project)
        assert out.cols == (("c", "a"),)
        assert out.child is base

    def test_identity_projection_removed(self):
        base = leaf("a", "b")
        plan = Project(base, (("a", "a"), ("b", "b")))
        assert merge_projections(plan) is base

    def test_reordering_projection_kept(self):
        base = leaf("a", "b")
        plan = Project(base, (("b", "b"), ("a", "a")))
        assert isinstance(merge_projections(plan), Project)


class TestPipeline:
    def test_shrinks_running_example(self):
        db = Connection(catalog=paper_dataset(), optimize=False)
        compiled = db.compile(running_example_query(db))
        for query in compiled.bundle.queries:
            optimized = optimize_plan(query.plan)
            assert node_count(optimized) < node_count(query.plan)
            check_plan(optimized)

    @pytest.mark.parametrize("mk", [
        lambda t: fmap(lambda x: x * 2 + 1, t),
        lambda t: ffilter(lambda x: (x > 1) & (x < 5), t),
        lambda t: group_with(lambda x: x % 2, t),
        lambda t: fmap(lambda x: tup(x, fsum(t)), t),
    ])
    def test_optimizer_preserves_results(self, mk):
        results = []
        for optimize in (False, True):
            db = Connection(optimize=optimize)
            db.create_table("t", [("n", int)], [(i,) for i in range(8)])
            results.append(db.run(mk(db.table("t"))))
        assert results[0] == results[1]
