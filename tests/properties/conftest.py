"""Property-suite plumbing: the ``property`` marker and example scaling.

Everything under ``tests/properties`` is marked ``property`` (except the
deterministic regression corpus, which stays tier-1), so CI can run the
fast suite with ``-m "not property"`` and the full randomized sweep as
its own job.  ``FERRY_EXAMPLES_MULT`` multiplies each test's example
budget -- the CI property job sets it to 5 for the full-depth run.
"""

import pathlib

import pytest

_HERE = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    # this hook sees the whole session's items, not just this directory's
    for item in items:
        if _HERE not in pathlib.Path(item.fspath).parents:
            continue
        if item.module.__name__.endswith("test_regressions"):
            continue  # explicit corpus: deterministic, stays tier-1
        item.add_marker(pytest.mark.property)
