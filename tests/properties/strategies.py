"""Hypothesis strategies for random embedded queries.

Generates well-typed, *total* query pipelines (no partial operations, no
division) so that differential runs across the oracle and all backends
must agree without exception handling.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import (
    Q,
    all_q,
    and_q,
    any_q,
    append,
    concat,
    concat_map,
    cond,
    drop,
    drop_while,
    ffilter,
    fmap,
    fsum,
    group_with,
    length,
    maximum_q,
    nil,
    nub,
    null,
    number,
    or_q,
    reverse,
    singleton,
    sort_with,
    sort_with_desc,
    take,
    take_while,
    to_q,
    tup,
    zip_q,
)
from repro.ftypes import IntT

ints = st.integers(min_value=-20, max_value=20)
small = st.integers(min_value=-3, max_value=5)


#: Values drawn from a tiny pool, so generated lists are duplicate-heavy
#: (the interesting regime for nub / group_with / distinct-based plans).
dup_ints = st.integers(min_value=-2, max_value=2)


@st.composite
def base_int_list(draw) -> Q:
    """A literal Int-list: empty, duplicate-heavy, or general-purpose.

    Empty and duplicate-heavy shapes are generated explicitly (not left
    to chance) because they exercise the encodings hardest: empty inner
    lists must survive the surrogate join, and duplicates stress
    Distinct/RowRank plans.
    """
    mode = draw(st.integers(0, 5))
    if mode == 0:
        return nil(IntT)
    if mode <= 2:
        values = draw(st.lists(dup_ints, min_size=2, max_size=10))
    else:
        values = draw(st.lists(ints, max_size=7))
    return to_q(values, hint=None) if values else nil(IntT)


def _scalar_fn(draw):
    """A random total Int -> Int function (as a Python lambda over Q)."""
    k = draw(small)
    which = draw(st.integers(0, 4))
    if which == 0:
        return lambda x: x + k
    if which == 1:
        return lambda x: x * k
    if which == 2:
        return lambda x: x % 7  # constant divisor: total
    if which == 3:
        return lambda x: cond(x > k, x, k - x)
    return lambda x: -x


def _predicate(draw):
    k = draw(small)
    which = draw(st.integers(0, 3))
    if which == 0:
        return lambda x: x > k
    if which == 1:
        return lambda x: x % 2 == 0
    if which == 2:
        return lambda x: (x > k) | (x < -k)
    return lambda x: ~(x == k)


@st.composite
def int_list_query(draw, max_ops: int = 4) -> Q:
    """A pipeline of list operations over a literal Int list."""
    q = draw(base_int_list())
    for _ in range(draw(st.integers(0, max_ops))):
        op = draw(st.integers(0, 14))
        if op == 0:
            q = fmap(_scalar_fn(draw), q)
        elif op == 1:
            q = ffilter(_predicate(draw), q)
        elif op == 2:
            q = reverse(q)
        elif op == 3:
            q = sort_with(_scalar_fn(draw), q)
        elif op == 4:
            q = sort_with_desc(_scalar_fn(draw), q)
        elif op == 5:
            q = take(draw(small), q)
        elif op == 6:
            q = drop(draw(small), q)
        elif op == 7:
            q = nub(q)
        elif op == 8:
            q = append(q, draw(base_int_list()))
        elif op == 9:
            q = take_while(_predicate(draw), q)
        elif op == 10:
            q = drop_while(_predicate(draw), q)
        elif op == 11:
            q = fmap(lambda p: p[0] + p[1], zip_q(q, reverse(q)))
        elif op == 12:
            # group then flatten: [Int] -> [[Int]] -> [Int]
            q = concat(group_with(_scalar_fn(draw), q))
        elif op == 13:
            # zip against a sorted self, keep the larger component
            f = _scalar_fn(draw)
            q = fmap(lambda p: cond(p[0] > p[1], p[0], p[1]),
                     zip_q(q, sort_with(f, q)))
        else:
            # dedup after reordering (nub must respect *first* occurrence
            # in the sorted order, not the original)
            q = nub(sort_with(_scalar_fn(draw), q))
    return q


@st.composite
def nested_query(draw) -> Q:
    """A query of type [[Int]] built from pipelines."""
    inner = draw(int_list_query(max_ops=2))
    which = draw(st.integers(0, 4))
    if which == 0:
        k = draw(st.integers(1, 4))
        return group_with(lambda x: x % k, inner)
    if which == 1:
        return fmap(lambda x: take(x % 4, inner), inner)
    if which == 2:
        return fmap(lambda x: singleton(x), inner)
    if which == 3:
        # sort the groups by size: composition of group_with + sort_with
        k = draw(st.integers(1, 3))
        return sort_with(length, group_with(lambda x: x % k, inner))
    # groups of deduplicated elements, some possibly empty after filter
    p = _predicate(draw)
    return fmap(lambda g: ffilter(p, g),
                group_with(_scalar_fn(draw), nub(inner)))


@st.composite
def scalar_query(draw) -> Q:
    """A query of scalar type (aggregation over a pipeline)."""
    q = draw(int_list_query(max_ops=3))
    which = draw(st.integers(0, 6))
    if which == 0:
        return fsum(q)
    if which == 1:
        return length(q)
    if which == 2:
        return null(q)
    if which == 3:
        return and_q(fmap(_predicate(draw), q))
    if which == 4:
        return or_q(fmap(_predicate(draw), q))
    if which == 5:
        return all_q(_predicate(draw), q)
    return any_q(_predicate(draw), q)


@st.composite
def any_query(draw) -> Q:
    which = draw(st.integers(0, 3))
    if which == 0:
        return draw(int_list_query())
    if which == 1:
        return draw(nested_query())
    if which == 2:
        return draw(scalar_query())
    return tup(draw(scalar_query()), draw(int_list_query(max_ops=2)))


# ----------------------------------------------------------------------
# arbitrary nested values, generated type-first so lists stay homogeneous
# ----------------------------------------------------------------------

import datetime  # noqa: E402

from repro.ftypes import (  # noqa: E402
    BoolT,
    DateT,
    DoubleT,
    ListT,
    StringT,
    TimeT,
    TupleT,
    Type,
)

_ATOM_STRATEGIES = {
    BoolT: st.booleans(),
    IntT: ints,
    DoubleT: st.floats(allow_nan=False, allow_infinity=False, width=32),
    # NUL is outside the database text domain (see ftypes.values)
    StringT: st.text(max_size=5).filter(lambda t: "\x00" not in t),
    DateT: st.dates(min_value=datetime.date(1990, 1, 1),
                    max_value=datetime.date(2030, 12, 31)),
    TimeT: st.times().map(lambda t: t.replace(microsecond=0)),
}

atom_types = st.sampled_from(list(_ATOM_STRATEGIES))

ferry_types = st.recursive(
    atom_types,
    lambda children: st.one_of(
        st.lists(children, min_size=2, max_size=3).map(
            lambda ts: TupleT(tuple(ts))),
        children.map(ListT),
    ),
    max_leaves=6,
)


def value_of(ty: Type) -> st.SearchStrategy:
    """A strategy for values inhabiting ``ty``."""
    if ty in _ATOM_STRATEGIES:
        return _ATOM_STRATEGIES[ty]
    if isinstance(ty, TupleT):
        return st.tuples(*(value_of(t) for t in ty.elts))
    assert isinstance(ty, ListT)
    return st.lists(value_of(ty.elt), max_size=4)


@st.composite
def typed_values(draw):
    """A (type, value) pair from the Ferry value universe."""
    ty = draw(ferry_types)
    return ty, draw(value_of(ty))
