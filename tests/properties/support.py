"""Shared hypothesis settings for the property suites.

``prop_settings(n)`` is the per-test example budget; the CI property job
multiplies every budget via ``FERRY_EXAMPLES_MULT`` (e.g. ``5`` turns a
40-example tier-1 run into a 200-example sweep) without the test files
hard-coding two sets of numbers.
"""

import os

from hypothesis import settings

#: Example-count multiplier (CI's full property job sets this > 1).
EXAMPLES_MULT = float(os.environ.get("FERRY_EXAMPLES_MULT", "1"))


def prop_settings(max_examples: int, **kwargs) -> settings:
    """Hypothesis settings with the suite-wide multiplier applied."""
    kwargs.setdefault("deadline", None)
    return settings(max_examples=max(1, int(max_examples * EXAMPLES_MULT)),
                    **kwargs)
