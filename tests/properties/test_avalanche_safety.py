"""Property: avalanche safety (the paper's headline guarantee).

"It is exclusively the number of list constructors [.] in the program's
result type that determines the number of queries contained in the
emitted relational query bundle" (Section 3.2) -- for every random
program, and independently of the database instance size.
"""

from hypothesis import given

from .support import prop_settings

from repro import Connection, fmap
from repro.core import compile_exp
from repro.ftypes import ListT, count_list_constructors

from .strategies import any_query, int_list_query, nested_query

SETTINGS = prop_settings(40)


class TestBundleSizeEqualsListConstructors:
    @SETTINGS
    @given(int_list_query())
    def test_flat(self, q):
        assert compile_exp(q.exp).size == 1 == count_list_constructors(q.ty)

    @SETTINGS
    @given(nested_query())
    def test_nested(self, q):
        assert compile_exp(q.exp).size == 2 == count_list_constructors(q.ty)

    @SETTINGS
    @given(any_query())
    def test_any_list_result(self, q):
        bundle = compile_exp(q.exp)
        counted = count_list_constructors(q.ty)
        if isinstance(q.ty, ListT):
            assert bundle.size == counted
        else:
            # scalar and tuple results need one extra query for the
            # (single) top-level row
            assert bundle.size == counted + 1


class TestDataIndependence:
    @prop_settings(15)
    @given(nested_query())
    def test_same_program_same_bundle_for_any_instance(self, q):
        """The compiled artefact -- including the generated SQL text -- is
        identical regardless of how much data the tables hold."""
        texts = []
        for rows in (0, 3, 50):
            db = Connection(backend="sqlite")
            db.create_table("t", [("n", int)], [(i,) for i in range(rows)])
            inner = fmap(lambda x: q, db.table("t"))
            compiled = db.compile(inner)
            texts.append(tuple(db.backend.generate(query).text
                               for query in compiled.bundle.queries))
        assert texts[0] == texts[1] == texts[2]
        assert len(texts[0]) == count_list_constructors(ListT(q.ty))
