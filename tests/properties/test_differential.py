"""Property: every backend implements the reference list semantics.

Random well-typed query pipelines are executed through the interpreter,
the in-memory engine (optimized and unoptimized), SQLite via generated
SQL, and the MIL VM; all must agree on values *and* order.  This is the
library's strongest correctness evidence for the paper's claim that the
relational encodings "faithfully preserve the DSH semantics" (Section 3.2).
"""

import os

from hypothesis import given

from .support import prop_settings

from repro import Connection
from repro.runtime import Catalog
from repro.semantics import Interpreter

from .strategies import any_query, int_list_query, nested_query, scalar_query

CATALOG = Catalog()
SETTINGS = prop_settings(40)
SHARDS = int(os.environ.get("FERRY_SHARDS", "2"))


def run_everywhere(q):
    expected = Interpreter(CATALOG).run(q.exp)
    for backend in ("engine", "sqlite", "mil"):
        db = Connection(backend=backend, catalog=CATALOG)
        assert db.run(q) == expected, f"{backend} diverged"
    raw = Connection(catalog=CATALOG, optimize=False)
    assert raw.run(q) == expected, "unoptimized engine diverged"
    par = Connection(catalog=CATALOG, parallel_bundles=True)
    assert par.run(q) == expected, "parallel bundle execution diverged"
    sharded = Connection(shards=SHARDS, catalog=CATALOG)
    assert sharded.run(q) == expected, "sharded SQL execution diverged"
    return expected


class TestDifferential:
    @SETTINGS
    @given(int_list_query())
    def test_flat_pipelines(self, q):
        run_everywhere(q)

    @SETTINGS
    @given(nested_query())
    def test_nested_pipelines(self, q):
        run_everywhere(q)

    @SETTINGS
    @given(scalar_query())
    def test_aggregations(self, q):
        run_everywhere(q)

    @prop_settings(25)
    @given(any_query())
    def test_mixed_shapes(self, q):
        run_everywhere(q)
