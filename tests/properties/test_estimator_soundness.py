"""Property: the cost model's row bounds contain the engine actuals.

The cost estimator (``repro.analysis.cost``) propagates ``(lo, hi)``
row bounds through the same sound combinators the ``Card`` lattice
uses, then clamps its point estimate into them.  The *bounds* are a
soundness claim -- for every instance, the materialized relation of
every plan node must hold between ``rows_lo`` and ``rows_hi`` rows.
(The *point* estimate carries no such claim; the estimate-drift lint
``D500`` polices it statistically instead.)

This suite compiles random well-typed pipelines, materializes every
intermediate DAG node on the in-memory engine, and audits each node's
bounds, with and without catalog row statistics.
"""

from hypothesis import given

from repro import Connection
from repro.analysis.cost import CostModel
from repro.backends.engine.evaluate import BundleCache, Engine
from repro.runtime import Catalog

from .strategies import any_query, int_list_query, nested_query
from .support import prop_settings

CATALOG = Catalog()
SETTINGS = prop_settings(30)


def check_bounds(q, table_rows=None):
    """Compile, materialize every node, and audit every Est's bounds."""
    db = Connection(backend="engine", catalog=CATALOG)
    bundle = db.compile(q, use_cache=False).bundle
    engine = Engine(CATALOG)
    cache = BundleCache()
    model = CostModel("engine", table_rows=table_rows)
    for query in bundle.queries:
        engine.execute(query.plan, cache=cache)
        model.estimate(query.plan)

    audited = 0
    for nid, rel in cache.values.items():
        est = model.memo.get(nid)
        if est is None:
            continue
        audited += 1
        assert est.contains(rel.nrows), (
            f"estimated bounds ({est.rows_lo:g}..{est.rows_hi}) exclude "
            f"the actual {rel.nrows} rows")
        assert est.rows_lo <= est.rows, "point estimate below lo bound"
        if est.rows_hi is not None:
            assert est.rows <= est.rows_hi, "point estimate above hi bound"
        assert est.self_cost >= 0.0
        assert est.width == len(rel.cols), (
            f"estimated width {est.width} != actual {len(rel.cols)}")
    assert audited > 0


class TestBoundsContainActuals:
    @SETTINGS
    @given(int_list_query())
    def test_flat(self, q):
        check_bounds(q)

    @SETTINGS
    @given(nested_query())
    def test_nested(self, q):
        check_bounds(q)

    @SETTINGS
    @given(any_query())
    def test_any(self, q):
        check_bounds(q)

    @SETTINGS
    @given(nested_query())
    def test_with_catalog_statistics(self, q):
        # Stats only sharpen TableScan bounds; soundness must survive.
        check_bounds(q, table_rows={})
