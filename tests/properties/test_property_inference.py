"""Property: inferred plan properties hold on materialized relations.

The inference engine (``repro.analysis.properties``) claims its ``keys``,
``constants``, ``card``, ``non_null`` and ``dense`` judgements are sound
for every instance.  This suite compiles random well-typed pipelines,
executes the bundle on the in-memory engine with a bundle cache (so every
intermediate DAG node's relation is retained), and checks each judgement
against the actual rows -- a falsifier for the analysis layer the same
way ``test_differential`` falsifies the backends.
"""

from hypothesis import given

from repro import Connection
from repro.analysis import infer_properties
from repro.backends.engine.evaluate import BundleCache, Engine
from repro.runtime import Catalog

from .strategies import any_query, int_list_query, nested_query
from .support import prop_settings

CATALOG = Catalog()
SETTINGS = prop_settings(30)


def check_inference(q):
    """Compile, materialize every node, and audit all inferred facts."""
    db = Connection(backend="engine", catalog=CATALOG)
    bundle = db.compile(q, use_cache=False).bundle
    engine = Engine(CATALOG)
    cache = BundleCache()
    props_memo, schemas = {}, {}
    for query in bundle.queries:
        engine.execute(query.plan, cache=cache)
        infer_properties(query.plan, props_memo, schemas)

    audited = 0
    for nid, rel in cache.values.items():
        props = props_memo.get(nid)
        if props is None:
            continue
        audited += 1
        idx = {c: i for i, c in enumerate(rel.cols)}

        assert props.card.contains(rel.nrows), (
            f"cardinality bound {props.card.show()} excludes the actual "
            f"{rel.nrows} rows")
        for col, want in props.constants.items():
            assert all(v == want for v in rel.columns[idx[col]]), (
                f"column {col!r} inferred constant {want!r} but varies")
        for col in props.non_null:
            assert None not in rel.columns[idx[col]], (
                f"column {col!r} inferred non-null but holds None")
        for key in props.keys:
            cols = sorted(key)
            if cols:
                proj = list(zip(*(rel.columns[idx[c]] for c in cols)))
            else:
                proj = [()] * rel.nrows
            assert len(set(proj)) == len(proj), (
                f"inferred key {{{', '.join(cols)}}} has duplicate "
                f"projections")
        for col, part in props.dense:
            groups: dict = {}
            pcols = sorted(part)
            for r in range(rel.nrows):
                gk = tuple(rel.columns[idx[c]][r] for c in pcols)
                groups.setdefault(gk, []).append(rel.columns[idx[col]][r])
            for gk, vals in groups.items():
                assert sorted(vals) == list(range(1, len(vals) + 1)), (
                    f"column {col!r} inferred dense per "
                    f"{{{', '.join(pcols)}}} but group {gk!r} holds {vals}")
    assert audited > 0


class TestPropertyInference:
    @SETTINGS
    @given(int_list_query())
    def test_flat_pipelines(self, q):
        check_inference(q)

    @SETTINGS
    @given(nested_query())
    def test_nested_pipelines(self, q):
        check_inference(q)

    @prop_settings(20)
    @given(any_query())
    def test_mixed_shapes(self, q):
        check_inference(q)
