"""Regression corpus: hypothesis-style failures pinned as explicit examples.

Each case is a concrete query shape that a randomized differential run
has flagged (or plausibly would flag) at some point: empty lists flowing
through every operator, duplicate-heavy inputs into nub/group_with,
out-of-range take/drop, zips whose sides diverge in length, and nesting
that produces empty inner lists.  Unlike the hypothesis suites these run
deterministically in tier-1, so a reintroduced bug fails loudly on every
push with a readable name instead of depending on example generation.
"""

import pytest

from repro import (
    append,
    concat,
    cond,
    drop,
    drop_while,
    ffilter,
    fmap,
    fsum,
    group_with,
    length,
    nil,
    nub,
    number,
    reverse,
    singleton,
    sort_with,
    take,
    take_while,
    to_q,
    zip_q,
)
from repro.ftypes import IntT
from repro.runtime import Catalog

from ..conftest import run_all_ways

EMPTY = lambda: nil(IntT)  # noqa: E731 - corpus shorthand
DUPES = lambda: to_q([1, 1, 2, 1, 2, 2, 1])  # noqa: E731


#: name -> (query builder, expected value) -- expected values double-check
#: the oracle itself, not just backend agreement.
CORPUS = {
    "map_over_empty": (lambda: fmap(lambda x: x + 1, EMPTY()), []),
    "filter_everything_out": (
        lambda: ffilter(lambda x: x > 99, to_q([1, 2, 3])), []),
    "nub_of_empty": (lambda: nub(EMPTY()), []),
    "nub_keeps_first_occurrence_order": (
        lambda: nub(to_q([3, 1, 3, 2, 1])), [3, 1, 2]),
    "nub_after_sort_respects_new_order": (
        lambda: nub(sort_with(lambda x: x, DUPES())), [1, 2]),
    "nub_of_all_duplicates": (lambda: nub(to_q([5, 5, 5, 5])), [5]),
    "group_with_duplicate_heavy": (
        lambda: group_with(lambda x: x % 2, DUPES()),
        [[2, 2, 2], [1, 1, 1, 1]]),
    "group_with_of_empty": (
        lambda: group_with(lambda x: x % 2, EMPTY()), []),
    "concat_of_groups_is_stable_sort": (
        lambda: concat(group_with(lambda x: x % 3, to_q([5, 3, 4, 2, 1]))),
        [3, 4, 1, 5, 2]),
    "take_zero": (lambda: take(0, to_q([1, 2])), []),
    "take_negative": (lambda: take(-2, to_q([1, 2])), []),
    "take_beyond_length": (lambda: take(99, to_q([1, 2])), [1, 2]),
    "drop_negative": (lambda: drop(-1, to_q([1, 2])), [1, 2]),
    "drop_beyond_length": (lambda: drop(99, to_q([1, 2])), []),
    "take_while_never_true": (
        lambda: take_while(lambda x: x > 9, to_q([1, 2, 3])), []),
    "drop_while_always_true": (
        lambda: drop_while(lambda x: x < 9, to_q([1, 2, 3])), []),
    "zip_unequal_after_filter": (
        lambda: zip_q(ffilter(lambda x: x > 2, to_q([1, 2, 3, 4])),
                      to_q([10, 20, 30])),
        [(3, 10), (4, 20)]),
    "zip_with_empty_side": (
        lambda: fmap(lambda p: p[0] + p[1], zip_q(EMPTY(), to_q([1]))), []),
    "append_two_empties": (lambda: append(EMPTY(), EMPTY()), []),
    "append_empty_left": (lambda: append(EMPTY(), to_q([7])), [7]),
    "reverse_of_singleton_groups": (
        lambda: reverse(fmap(lambda x: singleton(x), to_q([1, 2]))),
        [[2], [1]]),
    "nested_with_empty_inner_lists": (
        lambda: fmap(lambda x: ffilter(lambda y: y > x, to_q([1, 2])),
                     to_q([0, 2, 9])),
        [[1, 2], [], []]),
    "sum_of_empty_is_zero": (lambda: fsum(EMPTY()), 0),
    "length_after_dedup": (lambda: length(nub(DUPES())), 2),
    "cond_on_every_element": (
        lambda: fmap(lambda x: cond(x % 2 == 0, x, -x), to_q([1, 2, 3])),
        [-1, 2, -3]),
    "sort_with_duplicate_keys_is_stable": (
        lambda: sort_with(lambda x: x % 2, to_q([4, 3, 2, 1])),
        [4, 2, 3, 1]),
    # the property-driven rewrites (repro.analysis) each fire on one of
    # these; the corpus pins that elimination never changes the value
    "distinct_elim_group_of_deduped": (
        lambda: group_with(lambda x: x, nub(to_q([3, 1, 3, 2, 1]))),
        [[1], [2], [3]]),
    "select_true_constant_predicate": (
        lambda: ffilter(lambda x: to_q(True), to_q([1, 2, 3])), [1, 2, 3]),
    "rownum_dense_renumbering": (
        lambda: fmap(lambda p: p, number(number(to_q([7, 8])))),
        [((7, 1), 1), ((8, 2), 2)]),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_regression_corpus(name):
    build, expected = CORPUS[name]
    value = run_all_ways(build(), Catalog())
    assert value == expected, (
        f"corpus case {name!r}: all engines agree but the common value "
        f"changed: expected {expected!r}, got {value!r}")
