"""Properties of the value/type layer and the relational round trip."""

from hypothesis import given

from .support import prop_settings

from repro import Connection, to_q
from repro.ftypes import check_value, infer_type, normalize_value

from .strategies import typed_values

SETTINGS = prop_settings(60)


class TestValueLayer:
    @SETTINGS
    @given(typed_values())
    def test_check_accepts_inhabitants(self, tv):
        ty, value = tv
        check_value(value, ty)

    @SETTINGS
    @given(typed_values())
    def test_infer_agrees_with_hint(self, tv):
        ty, value = tv
        inferred = infer_type(value, hint=ty)
        assert inferred == ty

    @SETTINGS
    @given(typed_values())
    def test_normalize_stays_in_type(self, tv):
        ty, value = tv
        check_value(normalize_value(value, ty), ty)


class TestRelationalRoundTrip:
    """Figure 3's encodings are lossless: shredding a value through the
    compiler, executing the bundle, and stitching must reproduce it --
    including list order and empty inner lists (Section 4.1)."""

    @prop_settings(50)
    @given(typed_values())
    def test_engine_roundtrip(self, tv):
        ty, value = tv
        db = Connection()
        q = to_q(value, hint=ty)
        assert db.run(q) == normalize_value(value, ty)

    @prop_settings(25)
    @given(typed_values())
    def test_sqlite_roundtrip(self, tv):
        ty, value = tv
        db = Connection(backend="sqlite")
        q = to_q(value, hint=ty)
        assert db.run(q) == normalize_value(value, ty)
