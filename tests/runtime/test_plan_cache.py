"""Plan-cache correctness: fingerprints, hits, invalidation, eviction."""

import pytest

from repro import Connection, PlanCache, fmap, table, to_q
from repro.runtime import Catalog
from repro.runtime.plancache import CacheEntry, CacheKey


def make_catalog():
    cat = Catalog()
    cat.create_table("t", [("n", int)], [(1,), (2,), (3,)])
    return cat


def squares(db):
    """A fresh structurally-identical query each call (fresh lambda vars)."""
    return fmap(lambda x: x * x, db.table("t"))


class TestFingerprint:
    def test_stable_across_construction(self):
        db = Connection(catalog=make_catalog())
        assert squares(db).fingerprint() == squares(db).fingerprint()

    def test_alpha_invariant(self):
        # same program, different bound-variable names (fresh counter)
        a = fmap(lambda x: x + 1, to_q([1, 2]))
        b = fmap(lambda y: y + 1, to_q([1, 2]))
        assert a.fingerprint() == b.fingerprint()

    def test_different_programs_differ(self):
        a = fmap(lambda x: x + 1, to_q([1, 2]))
        b = fmap(lambda x: x + 2, to_q([1, 2]))
        c = fmap(lambda x: x + 1, to_q([1, 3]))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_table_schema_in_fingerprint(self):
        a = table("t", {"n": int})
        b = table("t", {"n": str})
        c = table("t", {"m": int})
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_literal_type_in_fingerprint(self):
        assert to_q(1).fingerprint() != to_q(1.0).fingerprint()
        assert to_q(True).fingerprint() != to_q(1).fingerprint()

    def test_empty_list_element_type_in_fingerprint(self):
        from repro import nil
        from repro.ftypes import IntT, StringT
        assert nil(IntT).fingerprint() != nil(StringT).fingerprint()


class TestCacheHits:
    def test_same_program_twice_compiles_once(self):
        db = Connection(catalog=make_catalog())
        r1 = db.run(squares(db))
        r2 = db.run(squares(db))
        assert r1 == r2 == [1, 4, 9]
        assert db.cache_stats.misses == 1
        assert db.cache_stats.hits == 1

    def test_hit_skips_lift_and_optimization(self):
        db = Connection(catalog=make_catalog())
        cold = db.compile(squares(db))
        warm = db.compile(squares(db))
        assert not cold.cache_hit and warm.cache_hit
        # the optimizer ran on the cold path only
        assert cold.pass_stats is not None and cold.pass_stats.plans > 0
        assert warm.pass_stats is None
        assert "lift" in cold.timings and "lift" not in warm.timings
        assert "optimize" not in warm.timings

    def test_hit_returns_same_bundle_object(self):
        db = Connection(catalog=make_catalog())
        cold = db.compile(squares(db))
        warm = db.compile(squares(db))
        assert warm.bundle is cold.bundle

    def test_use_cache_false_bypasses(self):
        db = Connection(catalog=make_catalog())
        db.compile(squares(db), use_cache=False)
        db.compile(squares(db), use_cache=False)
        assert db.cache_stats.lookups == 0
        assert len(db.plan_cache) == 0

    def test_codegen_cached_per_backend(self):
        db = Connection(backend="sqlite", catalog=make_catalog())
        db.run(squares(db))
        entry = db.compile(squares(db)).cache_entry
        code = entry.codegen["sqlite"]
        db.run(squares(db))
        assert entry.codegen["sqlite"] is code


class TestInvalidation:
    def test_ddl_forces_recompile(self):
        db = Connection(catalog=make_catalog())
        db.run(squares(db))
        db.catalog.drop_table("t")
        db.create_table("t", [("n", int)], [(5,)])
        # same program, same schema -- but the generation changed
        assert db.run(squares(db)) == [25]
        assert db.cache_stats.misses == 2

    def test_schema_change_is_checked_before_lookup(self):
        from repro.errors import SchemaError
        db = Connection(catalog=make_catalog())
        q = squares(db)  # declared against t(n: Int)
        db.run(q)
        db.catalog.drop_table("t")
        db.create_table("t", [("n", str)], [("x",)])
        with pytest.raises(SchemaError):
            db.run(q)

    def test_prepared_query_survives_ddl(self):
        db = Connection(catalog=make_catalog())
        prepared = db.prepare(squares(db))
        assert prepared.execute() == [1, 4, 9]
        db.catalog.drop_table("t")
        db.create_table("t", [("n", int)], [(7,)])
        assert prepared.execute() == [49]


class TestFlagSeparation:
    def test_optimize_flag_never_shares_entries(self):
        shared = PlanCache()
        cat = make_catalog()
        opt = Connection(catalog=cat, optimize=True, plan_cache=shared)
        raw = Connection(catalog=cat, optimize=False, plan_cache=shared)
        assert opt.run(squares(opt)) == raw.run(squares(raw))
        assert shared.stats.misses == 2 and shared.stats.hits == 0
        assert len(shared) == 2

    def test_decorrelate_flag_never_shares_entries(self):
        shared = PlanCache()
        cat = make_catalog()
        a = Connection(catalog=cat, decorrelate=True, plan_cache=shared)
        b = Connection(catalog=cat, decorrelate=False, plan_cache=shared)
        a.compile(squares(a))
        b.compile(squares(b))
        assert shared.stats.misses == 2 and shared.stats.hits == 0

    def test_shared_cache_shares_across_connections(self):
        shared = PlanCache()
        cat = make_catalog()
        a = Connection(catalog=cat, plan_cache=shared)
        b = Connection(catalog=cat, plan_cache=shared)
        a.run(squares(a))
        b.run(squares(b))
        assert shared.stats.misses == 1 and shared.stats.hits == 1


class TestLRUEviction:
    def test_unit_eviction_order(self):
        cache = PlanCache(capacity=2)

        def key(i):
            return CacheKey(f"fp{i}", True, True, 0)

        cache.insert(key(1), CacheEntry(bundle=None))
        cache.insert(key(2), CacheEntry(bundle=None))
        assert cache.lookup(key(1)) is not None  # refresh 1; 2 is now LRU
        cache.insert(key(3), CacheEntry(bundle=None))
        assert cache.stats.evictions == 1
        assert cache.lookup(key(2)) is None
        assert cache.lookup(key(1)) is not None
        assert cache.lookup(key(3)) is not None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_connection_eviction_at_capacity(self):
        db = Connection(catalog=make_catalog(), cache_size=1)
        db.run(squares(db))
        db.run(fmap(lambda x: x + 1, db.table("t")))  # evicts squares
        assert db.cache_stats.evictions == 1
        db.run(squares(db))  # must recompile
        assert db.cache_stats.misses == 3
        assert db.cache_stats.hits == 0


class TestAccounting:
    def test_cached_executions_count_queries(self):
        # The Section 3.2 avalanche metric counts executions, not
        # compilations: three runs of a 1-query bundle issue 3 queries
        # even though the program compiled once.
        db = Connection(catalog=make_catalog())
        for _ in range(3):
            db.run(squares(db))
        assert db.cache_stats.misses == 1
        assert db.queries_issued == 3
        assert db.executions == 3

    def test_prepared_execution_counts_queries(self):
        db = Connection(catalog=make_catalog())
        prepared = db.prepare(squares(db))
        before = db.queries_issued
        prepared.execute()
        prepared.execute()
        assert db.queries_issued == before + 2 * prepared.query_count
        assert db.executions == 2

    def test_compile_alone_issues_nothing(self):
        db = Connection(catalog=make_catalog())
        db.compile(squares(db))
        assert db.queries_issued == 0 and db.executions == 0


class TestResultCorrectness:
    @pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
    def test_cached_results_identical(self, backend):
        db = Connection(backend=backend, catalog=make_catalog())
        cold = db.run(squares(db))
        warm = db.run(squares(db))
        assert db.cache_stats.hits >= 1
        assert cold == warm == [1, 4, 9]

    @pytest.mark.parametrize("backend", ["engine", "sqlite", "mil"])
    def test_prepared_matches_run(self, backend):
        db = Connection(backend=backend, catalog=make_catalog())
        nested = fmap(lambda x: fmap(lambda y: y + x, db.table("t")),
                      db.table("t"))
        expected = db.run(nested)
        prepared = db.prepare(fmap(
            lambda x: fmap(lambda y: y + x, db.table("t")), db.table("t")))
        assert prepared.execute() == expected
