"""Differential: prepared queries survive DDL and stay semantics-faithful.

A :class:`PreparedQuery` compiled before ``create_table``/``drop_table``
DDL must transparently re-prepare (the catalog's schema generation is
part of the cache key) and afterwards agree with the reference
:class:`Interpreter` on every backend -- the prepared-handle variant of
the differential property suite.
"""

import pytest

from repro import Connection
from repro.semantics import Interpreter

BACKENDS = ("engine", "sqlite", "mil")


def fresh_connection(backend):
    db = Connection(backend=backend)
    db.create_table("nums", [("n", int)],
                    [(i,) for i in (3, 1, 4, 1, 5, 9, 2, 6)])
    return db


def nums_query(db):
    t = db.table("nums")
    return t.filter(lambda r: r > 2).map(lambda r: r * 10)


def oracle_value(db, q):
    return Interpreter(db.catalog).run(q.exp)


class TestPreparedAcrossDDL:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_create_table_reprepares_and_agrees(self, backend):
        db = fresh_connection(backend)
        q = nums_query(db)
        handle = db.prepare(q)
        before = handle.execute()
        assert before == oracle_value(db, q)

        db.create_table("unrelated", [("x", str)], [("a",)])
        after = handle.execute()
        assert after == oracle_value(db, q) == before

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drop_and_recreate_with_new_rows(self, backend):
        db = fresh_connection(backend)
        q = nums_query(db)
        handle = db.prepare(q)
        # catalog rows are stored sorted: 3,1,4,1,5,9,2,6 -> 1,1,2,3,4,5,6,9
        assert handle.execute() == [30, 40, 50, 60, 90]

        # replace the table contents entirely: same schema, new instance
        db.catalog.drop_table("nums")
        db.create_table("nums", [("n", int)], [(7,), (2,), (8,)])
        q2 = nums_query(db)
        assert handle.execute() == oracle_value(db, q2) == [70, 80]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reprepare_happens_once_per_generation(self, backend):
        db = fresh_connection(backend)
        handle = db.prepare(nums_query(db))
        gen = handle._schema_generation
        db.create_table("other", [("x", int)], [(1,)])
        handle.execute()
        assert handle._schema_generation > gen
        bumped = handle._schema_generation
        handle.execute()  # no further DDL: no further re-prepare
        assert handle._schema_generation == bumped

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dropped_table_surfaces_schema_error(self, backend):
        from repro.errors import SchemaError
        db = fresh_connection(backend)
        handle = db.prepare(nums_query(db))
        db.catalog.drop_table("nums")
        with pytest.raises(SchemaError):
            handle.execute()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bundle_size_is_stable_across_reprepare(self, backend):
        db = fresh_connection(backend)
        handle = db.prepare(nums_query(db))
        size = handle.query_count
        db.create_table("noise", [("x", int)])
        handle.execute()
        assert handle.query_count == size  # avalanche metric: type-determined
