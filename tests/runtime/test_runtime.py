"""Catalog, connection, and stitching behaviour."""

import pytest

from repro import Connection, PartialFunctionError, SchemaError, head, nil, to_q
from repro.core import compile_exp
from repro.errors import ExecutionError, QTypeError
from repro.ftypes import IntT
from repro.runtime import Catalog, stitch


class TestCatalog:
    def test_create_and_read(self):
        cat = Catalog()
        cat.create_table("t", [("b", int), ("a", str)], [(1, "x"), (2, "y")])
        assert cat.table_names() == ["t"]
        assert [c for c, _ in cat.schema("t")] == ["a", "b"]
        # rows reordered to alphabetical columns and sorted
        assert cat.rows("t") == [("x", 1), ("y", 2)]

    def test_duplicate_table(self):
        cat = Catalog()
        cat.create_table("t", [("n", int)])
        with pytest.raises(SchemaError):
            cat.create_table("t", [("n", int)])

    def test_row_width_checked(self):
        cat = Catalog()
        with pytest.raises(SchemaError):
            cat.create_table("t", [("n", int)], [(1, 2)])

    def test_cell_type_checked(self):
        cat = Catalog()
        with pytest.raises(SchemaError):
            cat.create_table("t", [("n", int)], [("oops",)])

    def test_int_widened_in_double_column(self):
        cat = Catalog()
        cat.create_table("t", [("x", float)], [(1,)])
        assert cat.rows("t") == [(1.0,)]

    def test_scalar_rows_accepted(self):
        cat = Catalog()
        cat.create_table("t", [("n", int)], [1, 2])
        assert cat.rows("t") == [(1,), (2,)]

    def test_drop_table(self):
        cat = Catalog()
        cat.create_table("t", [("n", int)])
        cat.drop_table("t")
        assert not cat.has_table("t")
        with pytest.raises(SchemaError):
            cat.rows("t")

    def test_version_bumps(self):
        cat = Catalog()
        v0 = cat.version
        cat.create_table("t", [("n", int)])
        assert cat.version > v0


class TestConnection:
    def test_unknown_backend(self):
        with pytest.raises(QTypeError):
            Connection(backend="oracle9i")

    def test_run_plain_python_value(self):
        db = Connection()
        assert db.run([1, 2, 3]) == [1, 2, 3]
        assert db.run(42) == 42

    def test_missing_table_at_run_time(self):
        from repro import table
        db = Connection()
        q = table("ghost", {"n": int})
        with pytest.raises(SchemaError):
            db.run(q)

    def test_declared_type_mismatch_at_run_time(self):
        from repro import table
        db = Connection()
        db.create_table("t", [("n", int)], [(1,)])
        with pytest.raises(SchemaError):
            db.run(table("t", {"n": str}))

    def test_queries_issued_accumulates(self):
        db = Connection()
        db.run(to_q([[1], [2]]))
        db.run(to_q([1]))
        assert db.queries_issued == 3

    def test_explain_mentions_queries(self):
        db = Connection()
        report = db.explain(to_q([[1]]))
        text = str(report)
        assert "-- Q1" in text and "-- Q2" in text
        assert report.bundle_size == 2
        assert report.avalanche_ok

    def test_compile_reports_query_count(self):
        db = Connection()
        assert db.compile(to_q([[1]])).query_count == 2


class TestStitch:
    def test_partial_scalar_raises(self):
        db = Connection()
        with pytest.raises(PartialFunctionError):
            db.run(head(nil(IntT)))

    def test_wrong_result_set_count(self):
        bundle = compile_exp(to_q([1]).exp)
        with pytest.raises(ExecutionError):
            stitch(bundle, [])

    def test_empty_list_result(self):
        db = Connection()
        assert db.run(nil(IntT)) == []

    def test_deeply_nested_roundtrip(self):
        db = Connection()
        value = [([("a", [1.5])], True)]
        assert db.run(to_q(value)) == value
