"""Audit of the accounting surfaces: timings, counters, and trace sums.

Pins down the documented contract of ``CompiledQuery.timings``,
``Connection.cache_stats``/``queries_issued``/``executions`` across every
run/prepare/cache-hit combination, and checks that the span tree's
children account (approximately) for the end-to-end wall time.
"""

from repro import Connection
from repro.bench.table1 import running_example_query

#: Phase keys documented on CompiledQuery.timings.
COLD_KEYS = {"check", "lookup", "lift", "optimize"}
WARM_KEYS = {"check", "lookup"}


class TestCompileTimings:
    def test_cold_compile_records_every_documented_phase(self, paper_db):
        compiled = paper_db.compile(running_example_query(paper_db))
        assert set(compiled.timings) == COLD_KEYS
        assert all(v >= 0.0 for v in compiled.timings.values())
        assert compiled.compile_time == sum(compiled.timings.values())
        assert not compiled.cache_hit
        assert compiled.pass_stats is not None

    def test_warm_compile_records_only_check_and_lookup(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.compile(q)
        warm = paper_db.compile(q)
        assert warm.cache_hit
        assert set(warm.timings) == WARM_KEYS
        # a cache hit never re-runs the optimizer
        assert warm.pass_stats is None

    def test_optimize_disabled_drops_the_optimize_key(self, paper_catalog):
        db = Connection(catalog=paper_catalog, optimize=False)
        compiled = db.compile(running_example_query(db))
        # without the optimizer the bundle is not yet verified, so the
        # final verifier pass runs (and is accounted) separately
        assert set(compiled.timings) == (COLD_KEYS - {"optimize"}) | {"verify"}
        assert compiled.pass_stats is None

    def test_cold_run_adds_codegen(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        # the codegen timing lands on the CompiledQuery run() built; the
        # next compile is warm, so check via a fresh uncached compile
        cold = paper_db.compile(q, use_cache=False)
        paper_db._codegen(cold)
        assert "codegen" in cold.timings

    def test_warm_run_reuses_cached_codegen(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        warm = paper_db.compile(q)
        paper_db._codegen(warm)
        # cached artifact: no generation happened, so no codegen timing
        assert "codegen" not in warm.timings


class TestExecutionCounters:
    def test_run_prepare_cache_hit_combinations(self, paper_catalog):
        db = Connection(catalog=paper_catalog)
        q = running_example_query(db)
        assert (db.executions, db.queries_issued) == (0, 0)

        db.run(q)                      # cold: miss
        assert (db.executions, db.queries_issued) == (1, 2)
        assert (db.cache_stats.hits, db.cache_stats.misses) == (0, 1)

        db.run(q)                      # warm: hit, still issues 2 queries
        assert (db.executions, db.queries_issued) == (2, 4)
        assert (db.cache_stats.hits, db.cache_stats.misses) == (1, 1)

        handle = db.prepare(q)         # compile-only: hit, no execution
        assert (db.executions, db.queries_issued) == (2, 4)
        assert (db.cache_stats.hits, db.cache_stats.misses) == (2, 1)

        handle.execute()               # prepared: no cache lookup at all
        handle.execute()
        assert (db.executions, db.queries_issued) == (4, 8)
        assert (db.cache_stats.hits, db.cache_stats.misses) == (2, 1)

        db.compile(q)                  # compile alone never executes
        assert (db.executions, db.queries_issued) == (4, 8)
        assert db.cache_stats.lookups == 4

    def test_queries_issued_matches_bundle_size_times_executions(
            self, any_backend_db):
        q = running_example_query(any_backend_db)
        size = any_backend_db.compile(q).bundle.size
        for _ in range(3):
            any_backend_db.run(q)
        assert any_backend_db.queries_issued == size * 3
        assert any_backend_db.executions == 3

    def test_uncached_compile_bypasses_stats(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.compile(q, use_cache=False)
        assert paper_db.cache_stats.lookups == 0


class TestTraceAccounting:
    def test_phase_spans_sum_to_end_to_end_time(self, paper_db):
        paper_db.run(running_example_query(paper_db))
        trace = paper_db.last_trace
        total = trace.root.duration
        children = sum(s.duration for s in trace.root.children)
        assert total > 0.0
        # the children partition the run: they can never exceed it (clock
        # granularity aside), and everything outside them is bookkeeping
        assert children <= total * 1.02 + 1e-6
        assert children >= total * 0.5

    def test_span_durations_match_compile_timings(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        trace = paper_db.last_trace
        # the span and the timings dict measure the same region with
        # separate clock reads: they must agree to within a millisecond
        compiled = paper_db.compile(q, use_cache=False)
        for phase, span_name in (("lift", "lift"), ("optimize", "optimize")):
            span = trace.find(span_name)
            assert span is not None
            assert abs(span.duration - compiled.timings[phase]) < max(
                0.5 * compiled.timings[phase] + 1e-3, 5e-3)

    def test_execute_spans_cover_the_bundle(self, paper_db):
        q = running_example_query(paper_db)
        paper_db.run(q)
        executes = paper_db.last_trace.find_all("execute")
        assert [s.attrs["query"] for s in executes] == [1, 2]
        total_rows = sum(s.attrs["rows"] for s in executes)
        stitch = paper_db.last_trace.find("stitch")
        assert stitch.attrs["rows"] == total_rows
