"""Reference-interpreter semantics, including partial-operation errors."""

import pytest

from repro import (
    PartialFunctionError,
    SchemaError,
    and_q,
    append,
    cond,
    drop,
    favg,
    ffilter,
    fmap,
    fsum,
    group_with,
    head,
    index,
    init,
    last,
    length,
    max_q,
    maximum_q,
    min_q,
    minimum_q,
    nil,
    nub,
    null,
    number,
    or_q,
    reverse,
    singleton,
    sort_with,
    sort_with_desc,
    table,
    tail,
    take,
    take_while,
    the,
    to_q,
    tup,
    zip_q,
)
from repro.ftypes import IntT
from repro.runtime import Catalog
from repro.semantics import Interpreter


@pytest.fixture()
def it():
    return Interpreter(Catalog())


def ev(it, q):
    return it.run(q.exp)


XS = to_q([3, 1, 4, 1, 5])
EMPTY = nil(IntT)


class TestTotalOps:
    def test_map_filter(self, it):
        assert ev(it, fmap(lambda x: x + 1, XS)) == [4, 2, 5, 2, 6]
        assert ev(it, ffilter(lambda x: x > 2, XS)) == [3, 4, 5]

    def test_sum_on_empty_is_zero(self, it):
        assert ev(it, fsum(EMPTY)) == 0
        assert ev(it, fsum(nil(IntT).map(lambda x: x.to_double()))) == 0.0

    def test_and_or_on_empty(self, it):
        assert ev(it, and_q(fmap(lambda x: x > 0, EMPTY))) is True
        assert ev(it, or_q(fmap(lambda x: x > 0, EMPTY))) is False

    def test_length_null(self, it):
        assert ev(it, length(EMPTY)) == 0
        assert ev(it, null(EMPTY)) is True
        assert ev(it, null(XS)) is False

    def test_take_drop_clamp(self, it):
        assert ev(it, take(100, XS)) == [3, 1, 4, 1, 5]
        assert ev(it, drop(100, XS)) == []
        assert ev(it, take(-1, XS)) == []
        assert ev(it, drop(-1, XS)) == [3, 1, 4, 1, 5]

    def test_zip_truncates(self, it):
        assert ev(it, zip_q(XS, to_q([10, 20]))) == [(3, 10), (1, 20)]

    def test_sort_stability(self, it):
        pairs = to_q([(2, "a"), (1, "b"), (2, "c"), (1, "d")])
        q = sort_with(lambda p: p[0], pairs)
        assert ev(it, q) == [(1, "b"), (1, "d"), (2, "a"), (2, "c")]

    def test_sort_desc_stability(self, it):
        pairs = to_q([(2, "a"), (1, "b"), (2, "c")])
        q = sort_with_desc(lambda p: p[0], pairs)
        assert ev(it, q) == [(2, "a"), (2, "c"), (1, "b")]

    def test_group_with_orders_groups_by_key(self, it):
        q = group_with(lambda x: x % 3, XS)
        assert ev(it, q) == [[3], [1, 4, 1], [5]]

    def test_nub_first_occurrence(self, it):
        assert ev(it, nub(XS)) == [3, 1, 4, 5]

    def test_number_is_one_based(self, it):
        assert ev(it, number(to_q(["a", "b"]))) == [("a", 1), ("b", 2)]

    def test_reverse_append_singleton(self, it):
        assert ev(it, reverse(XS)) == [5, 1, 4, 1, 3]
        assert ev(it, append(XS, EMPTY)) == [3, 1, 4, 1, 5]
        assert ev(it, singleton(7)) == [7]

    def test_take_while_empty_prefix(self, it):
        assert ev(it, take_while(lambda x: x > 100, XS)) == []

    def test_cond_lazy_in_interpreter(self, it):
        # only the live branch is evaluated in the reference semantics
        q = cond(to_q(True), to_q(1), index(EMPTY, 0))
        assert ev(it, q) == 1

    def test_min_max_binops(self, it):
        assert ev(it, min_q(3, 5)) == 3
        assert ev(it, max_q("a", "b")) == "b"


class TestPartialOps:
    @pytest.mark.parametrize("mk", [
        head, last, the, tail, init, maximum_q, minimum_q, favg,
    ])
    def test_empty_list_errors(self, it, mk):
        with pytest.raises(PartialFunctionError):
            ev(it, mk(EMPTY))

    def test_index_out_of_bounds(self, it):
        with pytest.raises(PartialFunctionError):
            ev(it, index(XS, 99))
        with pytest.raises(PartialFunctionError):
            ev(it, index(XS, -1))

    def test_division_by_zero(self, it):
        with pytest.raises(PartialFunctionError):
            ev(it, to_q(1) // 0)
        with pytest.raises(PartialFunctionError):
            ev(it, to_q(1.0) / 0.0)
        with pytest.raises(PartialFunctionError):
            ev(it, to_q(1) % 0)


class TestIntegerSemantics:
    def test_floor_division_matches_haskell_div(self, it):
        assert ev(it, to_q(-7) // 2) == -4  # floors toward -inf
        assert ev(it, to_q(7) // -2) == -4

    def test_mod_sign_follows_divisor(self, it):
        assert ev(it, to_q(-7) % 3) == 2
        assert ev(it, to_q(7) % -3) == -2


class TestTables:
    def test_unknown_table(self, it):
        q = table("ghost", {"n": int})
        with pytest.raises(SchemaError):
            ev(it, q)

    def test_schema_mismatch(self, it):
        it.catalog.create_table("t", [("n", int)], [(1,)])
        q = table("t", {"n": str})  # wrong declared type
        with pytest.raises(SchemaError):
            ev(it, q)

    def test_rows_in_canonical_order(self, it):
        it.catalog.create_table("t", [("n", int)], [(3,), (1,)])
        assert ev(it, table("t", {"n": int})) == [1, 3]

    def test_multi_column_rows_are_tuples(self, it):
        it.catalog.create_table("t", [("b", int), ("a", str)], [(1, "x")])
        assert ev(it, table("t", [("b", int), ("a", str)])) == [("x", 1)]


class TestScopes:
    def test_closure_captures_outer_variable(self, it):
        q = fmap(lambda x: fmap(lambda y: x + y, to_q([10, 20])),
                 to_q([1, 2]))
        assert ev(it, q) == [[11, 21], [12, 22]]

    def test_shadowing(self, it):
        q = fmap(lambda x: fmap(lambda x: x * 2, to_q([5])), to_q([1]))
        assert ev(it, q) == [[10]]
