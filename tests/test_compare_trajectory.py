"""Unit tests for the CI benchmark gate's trajectory picker.

The gate (``benchmarks/compare_trajectory.py``) receives the unpacked
artifact *directory* of the last successful main run and must pick the
numerically newest ``BENCH_<N>.json`` -- ``BENCH_10`` beats ``BENCH_9``
even though lexicographic order says otherwise -- and pass vacuously
across gaps in the sequence (a ``BENCH_6`` -> ``BENCH_8`` jump must not
wedge the gate).
"""

import json
import pathlib
import sys

_BENCHMARKS = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
sys.path.insert(0, str(_BENCHMARKS))
try:
    from compare_trajectory import HEADLINES, main, pick_previous
finally:
    sys.path.pop(0)


def write_trajectory(path, speedup):
    records = {name: {key: speedup} for name, key in HEADLINES}
    path.write_text(json.dumps({"records": records}))


class TestPickPrevious:
    def test_numeric_order_beats_lexicographic(self, tmp_path):
        for n in (2, 9, 10):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        assert pick_previous(str(tmp_path)) == str(
            tmp_path / "BENCH_10.json")

    def test_non_trajectory_files_are_ignored(self, tmp_path):
        (tmp_path / "BENCH_3.json").write_text("{}")
        (tmp_path / "BENCH_99.txt").write_text("")
        (tmp_path / "BENCH_x.json").write_text("{}")
        (tmp_path / "notes.json").write_text("{}")
        assert pick_previous(str(tmp_path)) == str(
            tmp_path / "BENCH_3.json")

    def test_empty_directory_yields_none(self, tmp_path):
        assert pick_previous(str(tmp_path)) is None


class TestDirectoryMode:
    def test_gap_in_the_sequence_still_gates(self, tmp_path, capsys):
        # Artifact holds BENCH_6; this run produces BENCH_8.  The gate
        # must compare against BENCH_6 rather than wedging on the gap.
        artifact = tmp_path / "artifact"
        artifact.mkdir()
        write_trajectory(artifact / "BENCH_6.json", speedup=2.0)
        current = tmp_path / "BENCH_8.json"
        write_trajectory(current, speedup=2.1)
        rc = main(["compare_trajectory.py", str(artifact), str(current)])
        out = capsys.readouterr().out
        assert rc == 0 and "BENCH_6.json" in out

    def test_regression_detected_through_directory(self, tmp_path):
        artifact = tmp_path / "artifact"
        artifact.mkdir()
        write_trajectory(artifact / "BENCH_6.json", speedup=2.0)
        current = tmp_path / "BENCH_8.json"
        write_trajectory(current, speedup=1.0)   # > 10% slower
        rc = main(["compare_trajectory.py", str(artifact), str(current)])
        assert rc == 1

    def test_empty_artifact_passes_vacuously(self, tmp_path, capsys):
        current = tmp_path / "BENCH_8.json"
        write_trajectory(current, speedup=1.0)
        empty = tmp_path / "artifact"
        empty.mkdir()
        rc = main(["compare_trajectory.py", str(empty), str(current)])
        assert rc == 0
        assert "vacuously" in capsys.readouterr().out
